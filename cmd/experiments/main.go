// Command experiments regenerates the thesis's evaluation: every table and
// figure of Chapter 4 and the appendices, from the same code paths the
// library's benchmarks use.
//
// Usage:
//
//	experiments                  # everything, as text, to stdout
//	experiments -only table8     # a single artifact
//	experiments -list            # artifact catalogue
//	experiments -dir results/    # also write per-artifact .txt and .csv
//	experiments -seed 99         # different random workload suite
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		only = flag.String("only", "", "regenerate a single artifact (e.g. table8, figure11, ext-stream)")
		list = flag.Bool("list", false, "list artifact IDs and exit")
		dir  = flag.String("dir", "", "also write each artifact as .txt (and .csv where applicable) into this directory")
		seed = flag.Int64("seed", 0, "workload suite seed (0 = the default paper-facing seed)")
		ext  = flag.Bool("ext", false, "also regenerate the repository's extension artifacts (ext-*)")
		htm  = flag.String("html", "", "additionally write a single self-contained HTML report to this file")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		for _, id := range experiments.ExtIDs() {
			fmt.Println(id)
		}
		return
	}
	if err := run(*only, *dir, *seed, *ext, *htm); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(only, dir string, seed int64, ext bool, htmlPath string) error {
	r := experiments.NewRunner(experiments.Config{Seed: seed})
	ids := experiments.IDs()
	if ext {
		ids = append(ids, experiments.ExtIDs()...)
	}
	if only != "" {
		ids = []string{only}
	}
	var page *report.HTMLReport
	if htmlPath != "" {
		page = report.NewHTMLReport("APT reproduction — paper tables and figures")
	}
	for _, id := range ids {
		a, err := r.Artifact(id)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "== %s — %s ==\n", strings.ToUpper(a.ID[:1])+a.ID[1:], a.Caption)
		if err := a.Render(&buf); err != nil {
			return err
		}
		buf.WriteString("\n")
		os.Stdout.Write(buf.Bytes())
		if dir != "" {
			if err := writeFiles(dir, a, buf.Bytes()); err != nil {
				return err
			}
		}
		if page != nil {
			switch {
			case a.Table != nil:
				page.AddTable(a.Table)
			case a.Figure != nil:
				page.AddFigure(a.Figure)
			default:
				page.AddText(a.Caption, a.Text)
			}
		}
	}
	if page != nil {
		f, err := os.Create(htmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := page.Render(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", htmlPath)
	}
	return nil
}

func writeFiles(dir string, a *experiments.Artifact, text []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, a.ID+".txt"), text, 0o644); err != nil {
		return err
	}
	var csv bytes.Buffer
	switch {
	case a.Table != nil:
		if err := a.Table.WriteCSV(&csv); err != nil {
			return err
		}
	case a.Figure != nil:
		if err := a.Figure.WriteCSV(&csv); err != nil {
			return err
		}
	default:
		return nil // text artifacts have no CSV form
	}
	return os.WriteFile(filepath.Join(dir, a.ID+".csv"), csv.Bytes(), 0o644)
}

// Benchmarks regenerating every table and figure of the thesis's
// evaluation (one Benchmark per paper artifact), plus ablation benches for
// the design choices docs/ARCHITECTURE.md calls out. Each iteration rebuilds the
// artifact from scratch on a fresh runner — no memoisation across
// iterations — so the reported time is the full cost of reproducing that
// artifact.
//
// Run them all:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"testing"

	"repro/apt"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchArtifact regenerates one paper artifact per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Config{})
		a, err := r.Artifact(id)
		if err != nil {
			b.Fatal(err)
		}
		if a == nil {
			b.Fatal("nil artifact")
		}
	}
}

// One benchmark per paper table and figure (the evaluation chapter's full
// set; see docs/ARCHITECTURE.md for the module map).

func BenchmarkTable01(b *testing.B)   { benchArtifact(b, "table1") }
func BenchmarkTable05(b *testing.B)   { benchArtifact(b, "table5") }
func BenchmarkTable07(b *testing.B)   { benchArtifact(b, "table7") }
func BenchmarkFigure05(b *testing.B)  { benchArtifact(b, "figure5") }
func BenchmarkTable08(b *testing.B)   { benchArtifact(b, "table8") }
func BenchmarkFigure06(b *testing.B)  { benchArtifact(b, "figure6") }
func BenchmarkFigure07(b *testing.B)  { benchArtifact(b, "figure7") }
func BenchmarkFigure08a(b *testing.B) { benchArtifact(b, "figure8a") }
func BenchmarkTable09(b *testing.B)   { benchArtifact(b, "table9") }
func BenchmarkFigure08b(b *testing.B) { benchArtifact(b, "figure8b") }
func BenchmarkTable10(b *testing.B)   { benchArtifact(b, "table10") }
func BenchmarkFigure09(b *testing.B)  { benchArtifact(b, "figure9") }
func BenchmarkFigure10(b *testing.B)  { benchArtifact(b, "figure10") }
func BenchmarkTable11(b *testing.B)   { benchArtifact(b, "table11") }
func BenchmarkFigure11(b *testing.B)  { benchArtifact(b, "figure11") }
func BenchmarkTable12(b *testing.B)   { benchArtifact(b, "table12") }
func BenchmarkFigure12(b *testing.B)  { benchArtifact(b, "figure12") }
func BenchmarkTable13(b *testing.B)   { benchArtifact(b, "table13") }
func BenchmarkTable14(b *testing.B)   { benchArtifact(b, "table14") }
func BenchmarkTable15(b *testing.B)   { benchArtifact(b, "table15") }
func BenchmarkTable16(b *testing.B)   { benchArtifact(b, "table16") }

// Extension artifacts (not in the thesis; see docs/ARCHITECTURE.md).

func BenchmarkExtPolicies(b *testing.B) { benchArtifact(b, "ext-policies") }
func BenchmarkExtStream(b *testing.B)   { benchArtifact(b, "ext-stream") }
func BenchmarkExtLatency(b *testing.B)  { benchArtifact(b, "ext-latency") }
func BenchmarkExtNoise(b *testing.B)    { benchArtifact(b, "ext-noise") }
func BenchmarkExtBounds(b *testing.B)   { benchArtifact(b, "ext-bounds") }

// BenchmarkStreamRunner times the open-system streaming driver end to
// end: a 2000-kernel Poisson stream in 500-kernel windows, sharded
// through the batch worker pool under APT, including shard generation and
// latency aggregation. It reports the aggregate p99 sojourn as a custom
// metric so `-bench` output doubles as a latency table.
func BenchmarkStreamRunner(b *testing.B) {
	b.ReportAllocs()
	var p99 float64
	for i := 0; i < b.N; i++ {
		shards, err := apt.MakeStream(2000, 500, 1, func(w *apt.Workload, seed int64) ([]float64, error) {
			return apt.PoissonArrivals(w, 1000, seed)
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := apt.RunStream(context.Background(), shards, apt.PaperMachine(4), apt.APT(4), nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Kernels != 2000 {
			b.Fatalf("kernels = %d", res.Kernels)
		}
		p99 = res.Sojourn.P99Ms
	}
	b.ReportMetric(p99, "p99_sojourn_ms")
}

// --- Ablation benches -----------------------------------------------------
//
// These quantify the design decisions documented in docs/ARCHITECTURE.md by running
// one full suite (10 graphs) per iteration and reporting the average
// makespan as a custom metric (ms/graph), so `-bench` output doubles as an
// ablation table.

func suiteAvgMakespan(b *testing.B, typ workload.GraphType, rate platform.GBps,
	mode sim.TransferMode, newPol func() sim.Policy) float64 {
	b.Helper()
	graphs := workload.MustSuite(typ, workload.DefaultSuiteSeed)
	var total float64
	for _, g := range graphs {
		costs, err := sim.PrepareCosts(g, platform.PaperSystem(rate), lut.Paper(),
			sim.CostConfig{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(costs, newPol(), sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		total += res.MakespanMs
	}
	return total / float64(len(graphs))
}

func benchAblation(b *testing.B, typ workload.GraphType, mode sim.TransferMode, newPol func() sim.Policy) {
	b.Helper()
	b.ReportAllocs()
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = suiteAvgMakespan(b, typ, 4, mode, newPol)
	}
	b.ReportMetric(avg, "avg_makespan_ms")
}

// Ablation: APT's flexibility factor across the paper's α grid (the
// valley of Figures 7/9 as bench metrics).
func BenchmarkAblationAPTAlpha1_5(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return core.New(1.5) })
}
func BenchmarkAblationAPTAlpha4(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return core.New(4) })
}
func BenchmarkAblationAPTAlpha16(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return core.New(16) })
}

// Ablation: the future-work APT-R variant vs plain APT at the same α.
func BenchmarkAblationAPTR(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return core.NewR(4) })
}

// Ablation: thesis-described HEFT/PEFT vs the original textbook
// formulations (insertion-based EFT / OEFT).
func BenchmarkAblationHEFTThesis(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return policy.NewHEFT() })
}
func BenchmarkAblationHEFTTextbook(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return &policy.HEFT{Textbook: true} })
}
func BenchmarkAblationPEFTThesis(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return policy.NewPEFT() })
}
func BenchmarkAblationPEFTTextbook(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return &policy.PEFT{Textbook: true} })
}

// Ablation: concurrent-link (max) vs serialized (sum) multi-predecessor
// transfers under APT on the dependency-heavy Type-2 suite.
func BenchmarkAblationTransferMax(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferMax, func() sim.Policy { return core.New(4) })
}
func BenchmarkAblationTransferSum(b *testing.B) {
	benchAblation(b, workload.Type2, sim.TransferSum, func() sim.Policy { return core.New(4) })
}

// Package repro reproduces "Alternative Processor within Threshold:
// Flexible Scheduling on Heterogeneous Systems" (S. S. Karia, M.S. thesis,
// Rochester Institute of Technology, March 2017).
//
// The public API lives in repro/apt: apt.Run simulates one workload on one
// machine under one policy, and apt.RunBatch fans a slice of run configs
// across a bounded worker pool with per-worker reusable engine state —
// deterministically, so batch results are identical to sequential runs.
//
// Beyond the thesis's closed-batch model, the streaming API evaluates
// open systems: arrival shapes (apt.PoissonArrivals, apt.BurstyArrivals,
// apt.DiurnalArrivals, apt.TraceArrivals) pace a stream, every result
// reports per-kernel sojourn and queueing-delay percentiles
// (Result.Sojourn, Result.QueueWait), and apt.RunStream shards a
// long-horizon stream into windows across the same worker pool,
// aggregating exact latency distributions — see the λ-vs-p99 quickstart
// in README.md and the `sweep -stream` command.
//
// The robustness API drops the thesis's exact-estimate assumption:
// apt.Options.Perturb injects seeded estimate-error noise (uniform,
// log-normal, stale-table drift, per-kind bias) and dynamic platform
// degradation (processor slowdowns and outages, link bandwidth loss) into
// the engine's actual-time path while policies keep deciding with the
// clean lookup table. apt.RunRobustness sweeps noise magnitude × policy
// and reports each policy's regret against the perfect-information oracle
// — `sweep -robust` runs the same sweep from the command line; interpret
// regret as the makespan paid purely for deciding on wrong estimates (see
// README.md's robustness section).
//
// The serving layer carries the rule out of simulation: repro/online is a
// sharded live scheduler that places real Go functions with Algorithm 1 —
// a lock-free striped submit path, a bounded admission queue with
// backpressure (ErrQueueFull / blocking SubmitCtx), SubmitGraph releasing
// dependent tasks as predecessors finish, live sojourn and queueing-delay
// percentiles, and optional α auto-tuning from observed regret — and
// cmd/aptserve exposes it over HTTP/JSON (POST /submit, POST /graph,
// GET /stats, GET /healthz) with graceful drain. The apt package
// re-exports the live telemetry types (LiveStats, LiveLatency); see
// docs/ARCHITECTURE.md for how the two runtimes share one data layer.
//
// The simulator, policies and paper experiment harness live under
// repro/internal. The benchmarks in this directory regenerate every table
// and figure of the thesis's evaluation chapter; see docs/ARCHITECTURE.md
// for the system map and README.md for the package map and quickstart.
package repro

// Package repro reproduces "Alternative Processor within Threshold:
// Flexible Scheduling on Heterogeneous Systems" (S. S. Karia, M.S. thesis,
// Rochester Institute of Technology, March 2017).
//
// The public API lives in repro/apt; the simulator, policies and paper
// experiment harness live under repro/internal. The benchmarks in this
// directory regenerate every table and figure of the thesis's evaluation
// chapter; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured results.
package repro

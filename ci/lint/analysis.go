package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package plus the diagnostic
// sink. Analyzers report through Reportf; the driver collects and sorts.
type Pass struct {
	Pkg   *Package
	diags []Diagnostic

	// directives maps file -> line -> the set of //lint: directive names
	// present on that line (e.g. "ordered" for //lint:ordered).
	directives map[*ast.File]map[int]map[string]bool
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func runAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	p := &Pass{Pkg: pkg}
	a.Run(p)
	for i := range p.diags {
		p.diags[i].Analyzer = a.Name
	}
	return p.diags
}

func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a //lint:<name> directive comment sits on the
// node's own line or on the line immediately above it in the same file.
func (p *Pass) suppressed(file *ast.File, pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = map[*ast.File]map[int]map[string]bool{}
	}
	lines, ok := p.directives[file]
	if !ok {
		lines = map[int]map[string]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, "//lint:")
				if !found {
					continue
				}
				directive, _, _ := strings.Cut(rest, " ")
				line := p.Pkg.Fset.Position(c.Pos()).Line
				if lines[line] == nil {
					lines[line] = map[string]bool{}
				}
				lines[line][directive] = true
			}
		}
		p.directives[file] = lines
	}
	line := p.Pkg.Fset.Position(pos).Line
	return lines[line][name] || lines[line-1][name]
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions and calls through function values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package a function belongs to
// ("" for builtins and error.Error etc.).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
// Objects with no position (predeclared identifiers) count as outer.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// rootIdent walks to the base identifier of an lvalue-ish expression:
// x, x.f, x[i], *x, x.f[i].g all root at x. Returns nil when the root is
// not a plain identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Intraprocedural analyzers set Run and are
// invoked once per target package; interprocedural analyzers set
// RunModule and are invoked once over the whole loaded module (their
// Pass carries Mod but no Pkg).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*Pass)
}

// Pass carries one analyzer invocation's view — the whole module, plus
// the current package for per-package analyzers — and the diagnostic
// sink. Analyzers report through Reportf; the driver collects and sorts.
type Pass struct {
	Mod   *Module
	Pkg   *Package // nil for RunModule analyzers
	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// runAnalyzer runs one analyzer over the module: per target package for
// intraprocedural analyzers, once for interprocedural ones.
func runAnalyzer(a *Analyzer, mod *Module) []Diagnostic {
	var diags []Diagnostic
	if a.RunModule != nil {
		p := &Pass{Mod: mod}
		a.RunModule(p)
		diags = p.diags
	} else {
		for _, pkg := range mod.Pkgs {
			if !pkg.Target {
				continue
			}
			p := &Pass{Mod: mod, Pkg: pkg}
			a.Run(p)
			diags = append(diags, p.diags...)
		}
	}
	for i := range diags {
		diags[i].Analyzer = a.Name
	}
	return diags
}

func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a //lint:<name> directive comment sits on the
// node's own line or on the line immediately above it in the same file.
func (p *Pass) suppressed(file *ast.File, pos token.Pos, name string) bool {
	return p.Mod.suppressed(file, pos, name)
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions and calls through function values.
func (pkg *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package a function belongs to
// ("" for builtins and error.Error etc.).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
// Objects with no position (predeclared identifiers) count as outer.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// rootIdent walks to the base identifier of an lvalue-ish expression:
// x, x.f, x[i], *x, x.f[i].g all root at x. Returns nil when the root is
// not a plain identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Module is the interprocedural view of one `go list` invocation: every
// in-module package (targets plus their in-module dependencies), parsed
// and type-checked, indexed three ways:
//
//   - byPath: package lookup by import path;
//   - funcs: every function and method declaration with a body, keyed by
//     its types.Func full name, each carrying its statically resolved
//     call sites — the per-package call graph, stitched across packages
//     by name (source-checked and export-data objects for the same
//     function are distinct *types.Func values, but agree on FullName);
//   - refs: the package-level reference graph — pkg A references pkg B
//     when A mentions a function, method or variable of B. Pure type
//     references (aliases, struct embedding, conversions) do not count:
//     a type carries no behaviour, so it cannot transmit nondeterminism.
//     This is the edge relation the determinism taint propagates over,
//     and what keeps apt's `online` type re-exports from dragging the
//     wall-clock-reading serving layer into the determinism scope.
type Module struct {
	Path   string
	Fset   *token.FileSet
	Pkgs   []*Package
	byPath map[string]*Package
	funcs  map[string]*funcInfo
	refs   map[string]map[string]bool

	// directives maps file -> line -> the set of //lint: directive names
	// present on that line (e.g. "ordered" for //lint:ordered). Built
	// lazily per file; analysis runs single-threaded.
	directives map[*ast.File]map[int]map[string]bool
}

// funcInfo is one declared function or method with a body.
type funcInfo struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
	// hot marks //apt:hotpath (allocation-budgeted root), cold marks
	// //apt:coldpath (deliberate slow-path boundary: error formatting,
	// degraded-mode timing — the hotpath closure stops here).
	hot, cold bool
	// calls are the statically resolved call sites in the body, in
	// source order, excluding calls nested inside FuncLits (a literal is
	// not necessarily executed when the enclosing function runs).
	calls []callSite
}

// callSite is one resolved static call.
type callSite struct {
	pos token.Pos
	fn  *types.Func // callee; interface methods and externals resolve here too
	key string
}

// funcKey returns the stable cross-package identity of a function: its
// FullName, which agrees between the source-checked declaration and the
// export-data object an importing package sees. Generic calls resolve to
// their origin (uninstantiated) function, matching the declaration.
func funcKey(fn *types.Func) string {
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	return fn.FullName()
}

// buildModule indexes the loaded packages.
func buildModule(path string, pkgs []*Package) *Module {
	m := &Module{
		Path:   path,
		Pkgs:   pkgs,
		byPath: make(map[string]*Package, len(pkgs)),
		funcs:  map[string]*funcInfo{},
		refs:   map[string]map[string]bool{},
	}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		m.byPath[pkg.Path] = pkg
		m.refs[pkg.Path] = map[string]bool{}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &funcInfo{
					key:  funcKey(obj),
					pkg:  pkg,
					decl: fd,
					hot:  hasDirective(fd, "//apt:hotpath"),
					cold: hasDirective(fd, "//apt:coldpath"),
				}
				fi.calls = collectCalls(pkg, fd.Body)
				m.funcs[fi.key] = fi
			}
		}
		m.collectRefs(pkg)
	}
	return m
}

// hasDirective reports whether the declaration's doc comment carries the
// given machine-readable directive line.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// collectCalls gathers the statically resolvable call sites directly
// inside body, skipping nested function literals.
func collectCalls(pkg *Package, body ast.Node) []callSite {
	var calls []callSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pkg.calleeFunc(call); fn != nil {
			calls = append(calls, callSite{pos: call.Pos(), fn: fn, key: funcKey(fn)})
		}
		return true
	})
	return calls
}

// collectRefs records which other in-module packages this package
// references through functions, methods or variables (including struct
// fields — reading another package's data is dataflow from it).
func (m *Module) collectRefs(pkg *Package) {
	out := m.refs[pkg.Path]
	for _, obj := range pkg.Info.Uses {
		switch obj.(type) {
		case *types.Func, *types.Var:
		default:
			continue
		}
		opkg := obj.Pkg()
		if opkg == nil || opkg.Path() == pkg.Path {
			continue
		}
		if p := opkg.Path(); p == m.Path || strings.HasPrefix(p, m.Path+"/") {
			out[p] = true
		}
	}
}

// funcOf resolves a callee to its in-module declaration, or nil for
// externals, interface methods and builtins.
func (m *Module) funcOf(key string) *funcInfo { return m.funcs[key] }

// suppressed reports whether a //lint:<name> directive comment sits on
// the node's own line or on the line immediately above it in its file.
func (m *Module) suppressed(file *ast.File, pos token.Pos, name string) bool {
	if m.directives == nil {
		m.directives = map[*ast.File]map[int]map[string]bool{}
	}
	lines, ok := m.directives[file]
	if !ok {
		lines = map[int]map[string]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, "//lint:")
				if !found {
					continue
				}
				directive, _, _ := strings.Cut(rest, " ")
				line := m.Fset.Position(c.Pos()).Line
				if lines[line] == nil {
					lines[line] = map[string]bool{}
				}
				lines[line][directive] = true
			}
		}
		m.directives[file] = lines
	}
	line := m.Fset.Position(pos).Line
	return lines[line][name] || lines[line-1][name]
}

// targetPos reports whether pos lies inside a package matched by the
// command-line patterns. Interprocedural analyzers traverse dependency
// bodies but report only against targets — a dependency's own findings
// surface when it is linted as a target (`make lint` targets everything).
func (m *Module) targetPos(pos token.Pos) bool {
	for _, pkg := range m.Pkgs {
		if pkg.fileOf(pos) != nil {
			return pkg.Target
		}
	}
	return false
}

// fileOf returns the *ast.File of pkg containing pos.
func (pkg *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestDeterminismAnalyzer exercises the taint-derived scope end to end on
// a three-package fixture: the seed package (violations fire), a package
// the seed references through a function call (taint propagates,
// violations fire), and a package the seed touches only through a type
// (no taint, its wall-clock read must stay unreported).
func TestDeterminismAnalyzer(t *testing.T) {
	defer func(old []string) { determinismSeeds = old }(determinismSeeds)
	determinismSeeds = []string{"repro/ci/lint/testdata/determinism"}
	runTestdata(t, determinism, "testdata/determinism/...")
}

func TestHotpathAnalyzer(t *testing.T)     { runTestdata(t, hotpath, "testdata/hotpath/...") }
func TestConcurrencyAnalyzer(t *testing.T) { runTestdata(t, concurrency, "testdata/concurrency") }
func TestFloatcmpAnalyzer(t *testing.T)    { runTestdata(t, floatcmp, "testdata/floatcmp") }
func TestLockorderAnalyzer(t *testing.T)   { runTestdata(t, lockorder, "testdata/lockorder") }
func TestGoleakAnalyzer(t *testing.T)      { runTestdata(t, goleak, "testdata/goleak") }

// TestDiagnosticJSON pins the -json wire shape the CI artifact upload
// consumes: stable lowercase keys, no token.Position leakage.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		File:     "x.go",
		Line:     3,
		Col:      7,
		Analyzer: "determinism",
		Message:  "call to time.Now",
	}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	want := `{"file":"x.go","line":3,"col":7,"analyzer":"determinism","message":"call to time.Now"}`
	if got != want {
		t.Errorf("Diagnostic JSON = %s, want %s", got, want)
	}
	if strings.Contains(got, "Filename") {
		t.Errorf("Diagnostic JSON leaks token.Position: %s", got)
	}
}

package main

import "testing"

func TestDeterminismAnalyzer(t *testing.T) { runTestdata(t, determinism, "testdata/determinism") }
func TestHotpathAnalyzer(t *testing.T)     { runTestdata(t, hotpath, "testdata/hotpath") }
func TestConcurrencyAnalyzer(t *testing.T) { runTestdata(t, concurrency, "testdata/concurrency") }
func TestFloatcmpAnalyzer(t *testing.T)    { runTestdata(t, floatcmp, "testdata/floatcmp") }

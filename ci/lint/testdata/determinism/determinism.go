// Package determinism seeds violations for the determinism analyzer:
// wall-clock reads, global math/rand draws, and order-sensitive map
// ranges — plus clean and suppressed counterparts that must stay quiet.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Wall-clock reads are banned; time arithmetic on injected values is not.
func clocks(t0 time.Time) time.Duration {
	now := time.Now()  // want "call to time.Now"
	_ = time.Since(t0) // want "call to time.Since"
	return now.Sub(t0) // method on an injected value: ok
}

// sideband shows the //lint:wallclock escape: a read whose value provably
// stays out of the diffed output (stderr-only timing) is suppressed, on
// the same line or the line above.
func sideband(t0 time.Time) time.Duration {
	//lint:wallclock — stderr-only side-band timing, never in diffed stdout
	start := time.Now()
	_ = time.Since(start) //lint:wallclock — same side-band measurement
	return start.Sub(t0)
}

// Global rand draws are banned; an injected seeded *rand.Rand is the
// sanctioned source, and the seeded constructors are allowed.
func draws(r *rand.Rand) float64 {
	_ = rand.Intn(10)                     // want "global rand.Intn"
	_ = rand.Float64()                    // want "global rand.Float64"
	rand.Shuffle(1, func(i, j int) {})    // want "global rand.Shuffle"
	seeded := rand.New(rand.NewSource(7)) // constructors: ok
	_ = seeded.Intn(10)                   // method on seeded generator: ok
	return r.Float64()                    // method on injected generator: ok
}

// sink is outer state the map ranges below write into.
var sink []string

func mapWrites(m map[string]int) int {
	for k := range m { // want "map iteration order is randomized"
		sink = append(sink, k)
	}
	total := 0
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	for k, v := range m { // want "map iteration order is randomized"
		m[k] = v + 1
	}
	return total
}

func mapReturns(m map[string]int) string {
	for k := range m { // want "depends on iteration order"
		if k != "" {
			return k
		}
	}
	return ""
}

func mapSends(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel in iteration order"
		ch <- k
	}
}

// Suppressed and clean ranges must stay quiet.
func quiet(m map[string]int, xs []int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:ordered — collected then sorted just below
		keys = append(keys, k)
	}
	//lint:ordered — per-key copy on the line above the range also works
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slice range: ok
		_ = k
	}
	for i, x := range xs { // slice range writing outer state: ok
		xs[i] = x + 1
	}
	for range m { // body writes nothing outer: ok
		local := 0
		local++
		_ = local
	}
	return keys
}

// taint.go wires the cross-package edges the scope derivation test needs:
// a function-level reference to dep (taints it) and a type-only reference
// to typeonly (must not taint it).
package determinism

import (
	"repro/ci/lint/testdata/determinism/dep"
	"repro/ci/lint/testdata/determinism/typeonly"
)

// useDep calls into dep: a behaviour-level reference, so dep joins the
// determinism scope.
func useDep() int { return dep.Roll() }

// liveStats references typeonly purely through a type: no taint edge.
type liveStats = typeonly.Stats

// zero proves the alias is used without ever touching a typeonly function
// or variable.
func zero() liveStats { return liveStats{} }

// Package typeonly is referenced from the seed fixture package only
// through a type: types carry no behaviour, so the taint derivation must
// NOT pull this package into the determinism scope, and the wall-clock
// read below must stay unreported. (This mirrors apt's type re-exports of
// the live serving layer, which legitimately reads the wall clock.)
package typeonly

import "time"

// Stats is the type the seed package aliases.
type Stats struct{ Start time.Time }

// Snapshot reads the wall clock; legal because the package is out of
// scope — no function or variable of it is reachable from a seed.
func Snapshot() Stats { return Stats{Start: time.Now()} }

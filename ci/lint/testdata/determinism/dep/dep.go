// Package dep is referenced from the seed fixture package through a
// function call: the taint derivation must pull it into the determinism
// scope, so the global rand draw below has to be reported even though
// this package is never named as a seed itself.
package dep

import "math/rand"

// Roll draws from the shared global source.
func Roll() int {
	return rand.Intn(6) // want "global rand.Intn"
}

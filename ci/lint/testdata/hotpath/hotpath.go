// Package hotpath seeds violations for the hotpath analyzer: an
// annotated function containing every banned construct, and both an
// annotated-clean and an unannotated-dirty function that must stay quiet.
package hotpath

import "fmt"

var calls int

// hot is on the annotated hot path and violates every rule.
//
//apt:hotpath
func hot(name string, xs []float64) float64 {
	defer func() { calls++ }() // want "defer in hotpath function hot" "closure literal in hotpath function hot"
	msg := "kernel " + name    // want "string concatenation in hotpath function hot"
	msg += "!"                 // want "string concatenation in hotpath function hot"
	fmt.Println(msg)           // want "call to fmt.Println in hotpath function hot"
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	f := func() float64 { return sum } // want "closure literal in hotpath function hot"
	return f()
}

// hotClean is annotated but disciplined: no diagnostics.
//
//apt:hotpath
func hotClean(xs []float64, out []float64) int {
	n := 0
	for i, x := range xs {
		if x > 0 {
			out[i] = x
			n++
		}
	}
	return n
}

// cold is unannotated, so the banned constructs are fine here.
func cold(name string) string {
	defer func() { calls++ }()
	return fmt.Sprintf("cold %s", name+"!")
}

// closure.go seeds the interprocedural hotpath cases: violations in
// helpers that are only *reachable* from an annotated root, the
// //apt:coldpath boundary that stops the traversal, and the PR 7
// heap-escape heuristics (interface boxing, string/[]byte conversions,
// unpreallocated append growth in loops).
package hotpath

// reach is the annotated root; every helper below is checked through it.
//
//apt:hotpath
func reach(names []string, xs []float64) float64 {
	total := acc(xs)
	slow(names)
	box(xs[0])
	_ = conv(names[0])
	_ = accPrealloc(xs)
	_ = accReuse(nil, xs)
	return total
}

// acc is unannotated but hotpath-reachable: the in-loop append to a slice
// declared without capacity is reported, with the chain in the message.
func acc(xs []float64) float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x) // want "append to out inside a loop in function acc .hotpath-reachable via reach → acc."
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// slow is a deliberate cold boundary: nothing inside it is reported even
// though it concatenates strings in a loop.
//
//apt:coldpath
func slow(names []string) {
	msg := ""
	for _, n := range names {
		msg += n // coldpath: legal
	}
	_ = msg
}

// box exercises the interface-boxing heuristics: an explicit conversion
// to an interface type and a concrete argument passed to an interface
// parameter (variadic included).
func box(x float64) any {
	v := any(x)  // want "conversion to interface in function box .hotpath-reachable via reach → box."
	sinkOne(x)   // want "argument boxes float64 into interface"
	sinkMany(x)  // want "argument boxes float64 into interface"
	sinkOne(v)   // already an interface: ok
	sinkOne(nil) // nil: ok
	return v
}

func sinkOne(v any)     { _ = v }
func sinkMany(v ...any) { _ = v }

// conv exercises the string/[]byte copy heuristics.
func conv(s string) int {
	b := []byte(s) // want "string→\[\]byte conversion in function conv"
	t := string(b) // want "\[\]byte→string conversion in function conv"
	return len(t)
}

// accPrealloc appends in a loop to a slice made with explicit capacity:
// the reallocation heuristic must stay quiet.
func accPrealloc(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x) // preallocated: ok
	}
	return out
}

// accReuse appends in a loop to a passed-in buffer — the reuse idiom the
// engine's scratch slices depend on; must stay quiet.
func accReuse(dst []float64, xs []float64) []float64 {
	for _, x := range xs {
		dst = append(dst, x) // caller-owned buffer: ok
	}
	return dst
}

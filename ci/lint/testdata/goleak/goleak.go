// Package goleak seeds goroutines with no termination path — unguarded
// infinite loops (direct, in a literal, and through a transitive callee)
// and a bare select{} — next to the guarded shapes that must stay quiet:
// channel ranges (close-terminated), context/done-channel selects with a
// return, finite bodies, and loops exited by break.
package goleak

import "context"

// spin loops forever: receiving in an infinite loop never terminates,
// even after the channel is closed (a closed channel yields zero values).
func spin(ch chan int) {
	for {
		<-ch
	}
}

// wrapper reaches spin transitively.
func wrapper(ch chan int) { spin(ch) }

func spawnLeaks(ch chan int) {
	go spin(ch) // want "goroutine running spin has no termination path"
	go func() { // want "goroutine literal has no termination path"
		for {
		}
	}()
	go func() { // want "goroutine literal has no termination path"
		select {}
	}()
	go wrapper(ch) // want "goroutine running wrapper has no termination path"
}

func spawnClean(ctx context.Context, ch chan int, done chan struct{}) {
	go func() { // range over a channel: terminated by close, ok
		for v := range ch {
			_ = v
		}
	}()
	go func() { // context-guarded select with return: ok
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
	go func() { // done-channel guarded: ok
		for {
			select {
			case <-done:
				return
			case <-ch:
			}
		}
	}()
	go func() { // finite body: ok
		ch <- 1
	}()
	go func() { // loop exited by an unlabeled break in its own body: ok
		for {
			if len(ch) == 0 {
				break
			}
		}
	}()
}

// spawnOpaque starts a function value: statically opaque, assumed managed.
func spawnOpaque(fn func()) {
	go fn()
}

// Package floatcmp seeds violations for the floatcmp analyzer: equality
// between computed floats fires; constant sentinel comparisons, integer
// comparisons and tolerance-based comparisons stay quiet. (Test files are
// exempt by construction: the loader only analyzes non-test sources.)
package floatcmp

import "math"

type opts struct {
	Alpha float64
	Rate  float32
}

type ms float64

func computed(a, b float64, c, d float32, x, y ms) bool {
	if a == b { // want "floating-point == between computed values"
		return true
	}
	if c != d { // want "floating-point != between computed values"
		return false
	}
	if x == y { // want "floating-point == between computed values"
		return true
	}
	return a/2 != b*3 // want "floating-point != between computed values"
}

func selfNaNCheck(v float64) bool {
	return v != v // want "floating-point != between computed values"
}

// Constant sentinel comparisons are exact by IEEE 754 assignment: quiet.
func sentinels(o opts) opts {
	if o.Alpha == 0 {
		o.Alpha = 1.5
	}
	if o.Rate != 0 {
		o.Rate = 0
	}
	if o.Alpha == math.Inf(1) { // want "floating-point == between computed values"
		o.Alpha = 1 // math.Inf is a call, not a constant: use math.IsInf
	}
	return o
}

// Integer equality and float ordering are fine: quiet.
func clean(i, j int, a, b float64) bool {
	if i == j {
		return true
	}
	if a < b || a > b {
		return false
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
}

// Package concurrency seeds violations for the concurrency analyzer:
// lock-bearing structs passed and returned by value, and a counter mixing
// sync/atomic with plain access — plus pointer-passing and all-atomic
// counterparts that must stay quiet.
package concurrency

import (
	"sync"
	"sync/atomic"
)

// counterSet embeds a mutex; guard carries one two levels deep.
type counterSet struct {
	mu sync.Mutex
	n  int
}

type guard struct {
	inner counterSet
	limit int
}

type atomicBox struct {
	hits atomic.Int64
}

func byValueParam(c counterSet) int { // want `parameter "c" of byValueParam carries sync.Mutex by value`
	return c.n
}

func byValueNested(g guard) int { // want `parameter "g" of byValueNested carries sync.Mutex by value`
	return g.limit
}

func byValueResult() counterSet { // want `result of byValueResult carries sync.Mutex by value`
	return counterSet{}
}

func byValueWaitGroup(wg sync.WaitGroup) { // want `parameter "wg" of byValueWaitGroup carries sync.WaitGroup by value`
	wg.Wait()
}

func byValueAtomic(b atomicBox) int64 { // want `parameter "b" of byValueAtomic carries sync/atomic.Int64 by value`
	return b.hits.Load()
}

func (c counterSet) byValueReceiver() {} // want `receiver "c" of byValueReceiver carries sync.Mutex by value`

// Pointers (and slices of pointers) are the sanctioned transport: quiet.
func byPointer(c *counterSet, gs []*guard, wg *sync.WaitGroup) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait()
	return c.n + len(gs)
}

// state mixes old-style sync/atomic calls on one field with plain access.
type state struct {
	ops  int64
	done uint32
}

func (s *state) record() {
	atomic.AddInt64(&s.ops, 1)
	atomic.StoreUint32(&s.done, 1)
}

func (s *state) broken() int64 {
	if s.done == 1 { // want `plain access to "done"`
		s.ops++ // want `plain access to "ops"`
	}
	return s.ops // want `plain access to "ops"`
}

// allAtomic reads through the atomic API: quiet.
func (s *state) allAtomic() int64 {
	if atomic.LoadUint32(&s.done) == 1 {
		return atomic.LoadInt64(&s.ops)
	}
	return atomic.SwapInt64(&s.ops, 0)
}

// plainOnly is a field never touched atomically: plain access is quiet.
type plainOnly struct {
	n int64
}

func (p *plainOnly) bump() int64 {
	p.n++
	return p.n
}

// Package lockorder seeds the lock-graph violations: an inverted
// acquisition-order pair, a re-acquired mutex, blocking operations under
// a held lock (directly, via defer-held locks, and through a callee), and
// the nonblocking/path-sensitive shapes that must stay quiet.
package lockorder

import "sync"

type server struct {
	a, b sync.Mutex
	ch   chan int
	wg   sync.WaitGroup
}

// abOrder establishes the order a → b. The inversion diagnostic is
// reported once, at the first-seen edge, naming the other site.
func (s *server) abOrder() {
	s.a.Lock()
	s.b.Lock() // want "inconsistent lock order: lockorder.server.b acquired while holding lockorder.server.a"
	s.b.Unlock()
	s.a.Unlock()
}

// baOrder acquires the same two locks in the opposite order.
func (s *server) baOrder() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// reentrant re-acquires a held mutex — guaranteed self-deadlock on the
// same instance.
func (s *server) reentrant() {
	s.a.Lock()
	s.a.Lock() // want "lock lockorder.server.a acquired while already held"
	s.a.Unlock()
	s.a.Unlock()
}

// sendUnderLock parks on a channel send with the lock held.
func (s *server) sendUnderLock(v int) {
	s.a.Lock()
	s.ch <- v // want "channel send while holding lockorder.server.a"
	s.a.Unlock()
}

// recvUnderLock blocks on a receive while a deferred unlock keeps the
// lock held to the end of the function.
func (s *server) recvUnderLock() int {
	s.b.Lock()
	defer s.b.Unlock()
	return <-s.ch // want "channel receive while holding lockorder.server.b"
}

// waitUnderLock parks on a WaitGroup with the lock held.
func (s *server) waitUnderLock() {
	s.a.Lock()
	s.wg.Wait() // want "WaitGroup.Wait while holding lockorder.server.a"
	s.a.Unlock()
}

// sendHelper is clean in isolation; the diagnostic fires here because
// callsHelperUnderLock reaches it with the lock held (interprocedural
// held-set propagation).
func (s *server) sendHelper(v int) {
	s.ch <- v // want "channel send while holding lockorder.server.a"
}

func (s *server) callsHelperUnderLock(v int) {
	s.a.Lock()
	s.sendHelper(v)
	s.a.Unlock()
}

// nonblocking uses a select with a default case: it cannot park, so it is
// legal under the lock.
func (s *server) nonblocking(v int) {
	s.a.Lock()
	select {
	case s.ch <- v:
	default:
	}
	s.a.Unlock()
}

// earlyUnlock releases on the branch that blocks: the held-set is
// path-sensitive, so the receive is legal.
func (s *server) earlyUnlock(cond bool) int {
	s.a.Lock()
	if cond {
		s.a.Unlock()
		return <-s.ch // unlocked on this path: ok
	}
	s.a.Unlock()
	return 0
}

// spawnUnderLock starts a goroutine while holding the lock: the spawn
// itself never blocks, and the goroutine body runs without our locks.
func (s *server) spawnUnderLock() {
	s.a.Lock()
	go func() { s.ch <- 1 }() // concurrent body, empty held-set: ok
	s.a.Unlock()
}

// consistent re-acquires a → b in the established order elsewhere: no new
// diagnostic (the pair is reported once, not per site).
func (s *server) consistent() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

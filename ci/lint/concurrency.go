package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// concurrency enforces two hygiene rules that go vet's copylocks only
// partially covers and the race detector only catches when a test
// happens to interleave:
//
//  1. No struct carrying sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/Pool
//     or sync/atomic state may be passed or returned by value — the copy
//     silently forks the lock or counter from the state it guards.
//  2. A variable or field updated through sync/atomic anywhere in the
//     package must never also be read or written plainly: the plain
//     access races with the atomic one, and on 32-bit targets may tear.
var concurrency = &Analyzer{
	Name: "concurrency",
	Doc:  "forbid by-value transport of lock-bearing structs and mixed atomic/plain access",
	Run:  runConcurrency,
}

func runConcurrency(p *Pass) {
	p.checkByValueSyncTransport()
	p.checkMixedAtomicAccess()
}

// checkByValueSyncTransport flags function parameters, results and
// receivers whose type carries synchronization state by value.
func (p *Pass) checkByValueSyncTransport() {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig := obj.Signature()
			check := func(v *types.Var, kind string) {
				if v == nil {
					return
				}
				if tn := syncStateIn(v.Type(), nil); tn != "" {
					pos := v.Pos()
					if !pos.IsValid() {
						pos = fd.Pos()
					}
					who := kind
					if v.Name() != "" {
						who = fmt.Sprintf("%s %q", kind, v.Name())
					}
					p.Reportf(pos, "%s of %s carries %s by value (copies the lock away from the state it guards; pass a pointer)", who, fd.Name.Name, tn)
				}
			}
			check(sig.Recv(), "receiver")
			for i := 0; i < sig.Params().Len(); i++ {
				check(sig.Params().At(i), "parameter")
			}
			for i := 0; i < sig.Results().Len(); i++ {
				check(sig.Results().At(i), "result")
			}
		}
	}
}

// syncStateIn returns the name of a sync/sync-atomic type reachable from
// t without an indirection (struct fields, array elements), or "".
func syncStateIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				// Every struct type in these packages (Mutex, WaitGroup,
				// atomic.Int64, atomic.Value, ...) pins its identity; the
				// interfaces (sync.Locker) are fine by value.
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return obj.Pkg().Path() + "." + obj.Name()
				}
				return ""
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := syncStateIn(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return syncStateIn(u.Elem(), seen)
	}
	return ""
}

// checkMixedAtomicAccess cross-references every `&x` handed to a
// sync/atomic call with every other use of the same variable or field in
// the package, and flags the plain ones.
func (p *Pass) checkMixedAtomicAccess() {
	atomicVars := map[types.Object]bool{} // vars/fields accessed via sync/atomic
	sanctioned := map[*ast.Ident]bool{}   // idents appearing inside &x atomic args

	record := func(arg ast.Expr) {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		var id *ast.Ident
		switch x := ast.Unparen(un.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
			// The base of &s.f (the ident s) is a read of s, not of f;
			// leave it unsanctioned so plain uses of s stay visible.
		default:
			return
		}
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			atomicVars[obj] = true
			sanctioned[id] = true
		}
	}

	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.Pkg.calleeFunc(call)
			if pkgPathOf(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				record(arg)
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil || !atomicVars[obj] {
				return true
			}
			p.Reportf(id.Pos(), "plain access to %q, which is accessed via sync/atomic elsewhere in this package (races with the atomic path; use atomic ops for every access)", id.Name)
			return true
		})
	}
}

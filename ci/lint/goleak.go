package main

import (
	"go/ast"
	"go/token"
)

// goleak flags `go` statements that start a goroutine with no statically
// visible termination path. The serving layer's lifecycle contract is
// that every goroutine ties its exit to a context, a Close/Shutdown
// signal, or a channel the spawner owns (range over a channel the
// spawner closes counts: close terminates the range). A goroutine whose
// body — or any function it transitively calls — contains an infinite
// loop with no return or loop-break, or a bare `select {}`, can never
// exit; in tests it trips leak detectors, in the server it pins the
// scheduler shards past Shutdown.
//
// The check is a heuristic over the static call graph: loops with a
// condition, ranges (including channel ranges), and interface-dispatched
// calls are assumed terminating, so it under-approximates — everything
// it does flag genuinely has no exit path.
var goleak = &Analyzer{
	Name:      "goleak",
	Doc:       "flag go statements whose goroutine has no statically visible termination path",
	RunModule: runGoleak,
}

func runGoleak(p *Pass) {
	memo := map[string]bool{}
	for _, pkg := range p.Mod.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var leaky bool
				var what string
				switch fun := ast.Unparen(g.Call.Fun).(type) {
				case *ast.FuncLit:
					leaky = bodyRunsForever(p.Mod, pkg, fun.Body, memo, map[string]bool{})
					what = "goroutine literal"
				default:
					fn := pkg.calleeFunc(g.Call)
					if fn == nil {
						return true // function value: opaque, assume managed
					}
					leaky = funcRunsForever(p.Mod, funcKey(fn), memo, map[string]bool{})
					what = "goroutine running " + fn.Name()
				}
				if leaky {
					p.Reportf(g.Pos(), "%s has no termination path: it loops forever with no return or break (tie its exit to a context, a Close signal, or a channel the spawner closes)", what)
				}
				return true
			})
		}
	}
}

// funcRunsForever reports whether the named in-module function can never
// return: its body (or a transitive callee outside any guarded position)
// loops forever. Unknown functions — external, interface methods — are
// assumed terminating.
func funcRunsForever(m *Module, key string, memo map[string]bool, visiting map[string]bool) bool {
	if v, ok := memo[key]; ok {
		return v
	}
	if visiting[key] {
		return false // recursion cycle: plain recursion still unwinds via its base case
	}
	fi := m.funcOf(key)
	if fi == nil {
		return false
	}
	visiting[key] = true
	v := bodyRunsForever(m, fi.pkg, fi.decl.Body, memo, visiting)
	delete(visiting, key)
	memo[key] = v
	return v
}

// bodyRunsForever reports whether a function body contains an unguarded
// infinite loop (`for { ... }` with no return and no break targeting it),
// a blocking-forever `select {}`, or a call (outside any loop or literal)
// to a function that itself runs forever.
func bodyRunsForever(m *Module, pkg *Package, body *ast.BlockStmt, memo map[string]bool, visiting map[string]bool) bool {
	if body == nil {
		return false
	}
	forever := false
	ast.Inspect(body, func(n ast.Node) bool {
		if forever {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate goroutine-less execution; not our flow
		case *ast.ForStmt:
			if n.Cond == nil && !loopExits(n) {
				forever = true
				return false
			}
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				forever = true // select {} blocks forever by definition
				return false
			}
		case *ast.CallExpr:
			if fn := pkg.calleeFunc(n); fn != nil {
				if funcRunsForever(m, funcKey(fn), memo, visiting) {
					forever = true
					return false
				}
			}
		}
		return true
	})
	return forever
}

// loopExits reports whether a condition-less for loop has an exit:
// a return statement anywhere in its body, or a break that targets this
// loop (an unlabeled break inside a nested for/range/switch/select
// targets the inner construct, not this loop).
func loopExits(loop *ast.ForStmt) bool {
	exits := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if exits {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // a return in a literal returns from the literal
			case *ast.ReturnStmt:
				exits = true
				return false
			case *ast.BranchStmt:
				switch {
				case n.Tok != token.BREAK:
				case n.Label != nil:
					// Conservatively treat any labeled break as exiting:
					// the only labels in scope enclose this loop.
					exits = true
					return false
				case breakable:
					exits = true
					return false
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if n != loop {
					// Unlabeled breaks inside target the nested construct.
					for _, child := range childBodies(n) {
						walk(child, false)
					}
					return false
				}
			}
			return true
		})
	}
	for _, st := range loop.Body.List {
		walk(st, true)
		if exits {
			return true
		}
	}
	return false
}

// childBodies returns the statement bodies of a nested breakable
// construct, so loopExits can keep scanning for returns (which always
// exit) while discounting its unlabeled breaks.
func childBodies(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		out = append(out, n.Body)
	case *ast.RangeStmt:
		out = append(out, n.Body)
	case *ast.SwitchStmt:
		out = append(out, n.Body)
	case *ast.TypeSwitchStmt:
		out = append(out, n.Body)
	case *ast.SelectStmt:
		out = append(out, n.Body)
	}
	return out
}

package main

// Golden-test harness for the analyzers: each testdata package seeds
// violations annotated with `// want "regexp"` comments on the offending
// line (several wants per line allowed). The harness loads the package
// through the same go list + go/types pipeline the driver uses, runs one
// analyzer, and requires an exact match: every want satisfied by a
// diagnostic on its line, no diagnostic without a want.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantArgRE matches one double-quoted or backtick-quoted pattern;
// backticks let patterns themselves contain double quotes.
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one `// want` entry: a position plus a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// runTestdata loads pattern (one or more testdata packages: pass a /...
// pattern to exercise cross-package propagation) and checks one analyzer's
// diagnostics against the `// want` comments in every target package.
func runTestdata(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	mod, err := load([]string{"./" + filepath.ToSlash(pattern)})
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	var wants []*expectation
	targets := 0
	for _, pkg := range mod.Pkgs {
		if !pkg.Target {
			continue
		}
		targets++
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", name, i+1)
				}
				for _, arg := range args {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
					}
					wants = append(wants, &expectation{file: name, line: i + 1, pattern: re})
				}
			}
		}
	}
	if targets == 0 {
		t.Fatalf("no target packages matched %s", pattern)
	}

	for _, d := range runAnalyzer(a, mod) {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", w.file, w.line, w.pattern)
		}
	}
}

// wholeRepo loads every package of the module exactly once and shares the
// result across the tests that need the full interprocedural view.
var wholeRepo = sync.OnceValues(func() (*Module, error) {
	return load([]string{"repro/..."})
})

// TestSuiteCleanOnRepo runs the full analyzer suite over the whole module:
// the tree must stay self-clean (every real finding is fixed or carries a
// reviewed //lint:/coldpath escape), otherwise `make lint` is red.
func TestSuiteCleanOnRepo(t *testing.T) {
	mod, err := wholeRepo()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analyzers {
		for _, d := range runAnalyzer(a, mod) {
			t.Errorf("%s: %s: %s", d.Pos, a.Name, d.Message)
		}
	}
}

// pr6Scope is the hand-maintained determinism scope the derived taint
// closure replaced. The derivation must never quietly narrow coverage:
// every package the old list named has to stay inside the derived scope.
var pr6Scope = []string{
	"repro/apt",
	"repro/internal/sim",
	"repro/internal/dfg",
	"repro/internal/policy",
	"repro/internal/stats",
	"repro/internal/perturb",
	"repro/internal/workload",
	"repro/internal/heaps",
}

func TestDerivedScopeSupersetOfPR6(t *testing.T) {
	mod, err := wholeRepo()
	if err != nil {
		t.Fatal(err)
	}
	scope := deriveDeterminismScope(mod)
	for _, seed := range determinismSeeds {
		if !scope[seed] {
			t.Errorf("seed %s missing from its own derived scope (package deleted or renamed?)", seed)
		}
	}
	for _, path := range pr6Scope {
		if !scope[path] {
			t.Errorf("derived determinism scope lost %s, which the PR 6 hand-maintained list covered", path)
		}
	}
	// The serving layer legitimately reads the wall clock and is only
	// type-referenced from the sweep closure; it must stay out of scope,
	// or deriving the scope from references was pointless.
	if scope["repro/online"] {
		t.Errorf("repro/online entered the determinism scope; only type-level references should link it to the sweep closure")
	}
}

// TestSeedsMatchCI pins every determinism seed to an actual byte-diffed
// invocation in the CI workflow: a seed whose package CI no longer diffs
// is a stale taint source, and a determinism job diffing a package that is
// not a seed would leave that package unchecked.
func TestSeedsMatchCI(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	ci := string(raw)
	for _, seed := range determinismSeeds {
		rel := "./" + strings.TrimPrefix(seed, "repro/")
		if !strings.Contains(ci, rel) {
			t.Errorf("determinism seed %s has no %s invocation in .github/workflows/ci.yml", seed, rel)
		}
	}
	if !strings.Contains(ci, "cmp ") {
		t.Errorf("ci.yml no longer byte-compares outputs (no `cmp` invocation); the determinism seeds lost their justification")
	}
}

func TestMain(m *testing.M) {
	// The loader shells out to `go list` relative to the current
	// directory; tests run with cwd = ci/lint, which is inside the
	// module, so patterns like ./testdata/... resolve. Guard anyway.
	if _, err := os.Stat("testdata"); err != nil {
		fmt.Fprintln(os.Stderr, "ci/lint tests must run from the ci/lint directory:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

package main

// Golden-test harness for the analyzers: each testdata package seeds
// violations annotated with `// want "regexp"` comments on the offending
// line (several wants per line allowed). The harness loads the package
// through the same go list + go/types pipeline the driver uses, runs one
// analyzer, and requires an exact match: every want satisfied by a
// diagnostic on its line, no diagnostic without a want.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantArgRE matches one double-quoted or backtick-quoted pattern;
// backticks let patterns themselves contain double quotes.
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one `// want` entry: a position plus a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

func runTestdata(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := load([]string{"./" + filepath.ToSlash(dir)})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	pkg := pkgs[0]

	var wants []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted pattern", name, i+1)
			}
			for _, arg := range args {
				pat := arg[1]
				if pat == "" {
					pat = arg[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, pattern: re})
			}
		}
	}

	for _, d := range runAnalyzer(a, pkg) {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", w.file, w.line, w.pattern)
		}
	}
}

// TestDriverCleanOnSelf runs the full suite over this package as a smoke
// test of the driver path (ci/lint must of course be lint-clean itself).
func TestDriverCleanOnSelf(t *testing.T) {
	pkgs, err := load([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			for _, d := range runAnalyzer(a, pkg) {
				t.Errorf("%s: %s: %s", d.Pos, a.Name, d.Message)
			}
		}
	}
}

// TestDeterministicScopeExists pins the scope list to real packages: a
// renamed or deleted package would otherwise silently drop out of
// determinism checking.
func TestDeterministicScopeExists(t *testing.T) {
	for path := range deterministicScope {
		rel := strings.TrimPrefix(path, "repro/")
		if _, err := os.Stat(filepath.Join("..", "..", filepath.FromSlash(rel))); err != nil {
			t.Errorf("deterministicScope lists %s but %v", path, err)
		}
	}
}

func TestMain(m *testing.M) {
	// The loader shells out to `go list` relative to the current
	// directory; tests run with cwd = ci/lint, which is inside the
	// module, so patterns like ./testdata/... resolve. Guard anyway.
	if _, err := os.Stat("testdata"); err != nil {
		fmt.Fprintln(os.Stderr, "ci/lint tests must run from the ci/lint directory:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

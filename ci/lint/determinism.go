package main

import (
	"go/ast"
	"go/types"
	"sort"
)

// determinism enforces the repo's byte-identical-reruns contract: no
// wall-clock reads, no global math/rand state, and no order-sensitive
// iteration over maps. Simulated time is data (float64 ms), randomness is
// an injected seeded *rand.Rand, and map iteration order leaks into any
// output it writes — CI diffs sweep outputs byte-for-byte, so one
// unsorted range shows up as flaky nondeterminism long after the fact.
//
// The scope is not a hard-coded package list: it is derived from
// determinismSeeds — the packages whose outputs CI byte-diffs — by
// propagating taint through the module's reference graph (see
// Module.refs). Any package whose functions, methods or variables are
// transitively reachable from a seed can feed bytes into the diffed
// output, so the whole closure is held to the contract; packages only
// referenced through types (apt's re-export aliases of the live serving
// layer) stay outside it.
var determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock, global rand and order-sensitive map ranges in the taint-derived deterministic scope",
	RunModule: runDeterminismModule,
}

// determinismSeeds lists the packages whose outputs CI diffs
// byte-for-byte across reruns — the taint sources of the determinism
// scope. Today that is the sweep binary: the CI determinism job reruns
// `cmd/sweep` in batch, stream, scale and robust modes and cmp's stdout.
// A test pins each seed to an actual `cmd.*sweep` invocation in
// .github/workflows/ci.yml, so the seed list cannot silently outlive the
// job that justifies it.
var determinismSeeds = []string{"repro/cmd/sweep"}

// deriveDeterminismScope computes the transitive closure of the seeds
// over the module's reference graph, restricted to loaded packages. The
// result is deterministic (sorted insertion order does not matter for a
// set, but tests compare it against golden lists).
func deriveDeterminismScope(m *Module) map[string]bool {
	scope := map[string]bool{}
	var frontier []string
	for _, s := range determinismSeeds {
		if m.byPath[s] != nil && !scope[s] {
			scope[s] = true
			frontier = append(frontier, s)
		}
	}
	for len(frontier) > 0 {
		pkg := frontier[0]
		frontier = frontier[1:]
		next := make([]string, 0, len(m.refs[pkg]))
		for ref := range m.refs[pkg] {
			if !scope[ref] && m.byPath[ref] != nil {
				scope[ref] = true
				next = append(next, ref)
			}
		}
		// Visit in sorted order so any future order-dependent logic
		// (diagnostic attribution, debugging prints) stays reproducible.
		sort.Strings(next)
		frontier = append(frontier, next...)
	}
	return scope
}

func runDeterminismModule(p *Pass) {
	scope := deriveDeterminismScope(p.Mod)
	for _, pkg := range p.Mod.Pkgs {
		if pkg.Target && scope[pkg.Path] {
			runDeterminismPkg(p, pkg)
		}
	}
}

// bannedTimeFuncs are the wall-clock reads that make a run irreproducible.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true}

// allowedRandFuncs are the package-level constructors of math/rand that
// produce an explicitly seeded generator; everything else package-level
// (Intn, Float64, Shuffle, ...) draws from the shared global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors:
	"NewPCG": true, "NewChaCha8": true,
}

// runDeterminismPkg applies the intraprocedural checks to one scoped
// package. A wall-clock read whose result provably never reaches the
// diffed output — side-band throughput reporting on stderr — carries a
// //lint:wallclock directive on (or immediately above) the call, the
// same shape of per-site proof obligation as //lint:ordered.
func runDeterminismPkg(p *Pass, pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := pkg.calleeFunc(n)
				if fn == nil || fn.Signature().Recv() != nil {
					return true // methods (e.g. on *rand.Rand) are fine
				}
				switch pkgPathOf(fn) {
				case "time":
					if bannedTimeFuncs[fn.Name()] && !p.suppressed(file, n.Pos(), "wallclock") {
						p.Reportf(n.Pos(), "call to time.%s in deterministic package (simulated time is data; inject times explicitly, or mark //lint:wallclock if the value provably stays out of diffed output)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !allowedRandFuncs[fn.Name()] {
						p.Reportf(n.Pos(), "global rand.%s in deterministic package (draw from an injected seeded *rand.Rand)", fn.Name())
					}
				}
			case *ast.RangeStmt:
				p.checkMapRange(pkg, file, n)
			}
			return true
		})
	}
}

// checkMapRange flags a range over a map whose body writes state declared
// outside the loop (or returns out of it): the write order — and for an
// early return, the chosen element — then depends on Go's randomized map
// iteration order. Ranges proven order-insensitive carry //lint:ordered.
func (p *Pass) checkMapRange(pkg *Package, file *ast.File, rng *ast.RangeStmt) {
	t := pkg.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if p.suppressed(file, rng.Pos(), "ordered") {
		return
	}
	lo, hi := rng.Pos(), rng.End()

	// outer reports whether the expression's root variable is declared
	// outside the range statement (or is too opaque to prove inner).
	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		if id.Name == "_" {
			return false
		}
		return !declaredWithin(obj, lo, hi)
	}

	// One diagnostic per range, anchored at the range statement (where
	// the fix goes), describing the first order-sensitive effect found.
	reported := false
	report := func(what string) {
		if !reported {
			reported = true
			p.Reportf(rng.Pos(), "map range %s, but map iteration order is randomized (iterate sorted keys, or mark //lint:ordered if provably order-insensitive)", what)
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if outer(lhs) {
					report("writes state declared outside the loop")
					return true
				}
			}
		case *ast.IncDecStmt:
			if outer(n.X) {
				report("writes state declared outside the loop")
			}
		case *ast.SendStmt:
			if outer(n.Chan) {
				report("sends on a channel in iteration order")
			}
		case *ast.ReturnStmt:
			report("returns from inside the loop, so the surviving element depends on iteration order")
		}
		return true
	})
}

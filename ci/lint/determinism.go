package main

import (
	"go/ast"
	"go/types"
)

// determinism enforces the repo's byte-identical-reruns contract inside
// the determinism-scoped packages (deterministicScope in main.go): no
// wall-clock reads, no global math/rand state, and no order-sensitive
// iteration over maps. Simulated time is data (float64 ms), randomness is
// an injected seeded *rand.Rand, and map iteration order leaks into any
// output it writes — CI diffs sweep outputs byte-for-byte, so one
// unsorted range shows up as flaky nondeterminism long after the fact.
var determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand and order-sensitive map ranges in deterministic packages",
	Run:  runDeterminism,
}

// bannedTimeFuncs are the wall-clock reads that make a run irreproducible.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true}

// allowedRandFuncs are the package-level constructors of math/rand that
// produce an explicitly seeded generator; everything else package-level
// (Intn, Float64, Shuffle, ...) draws from the shared global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors:
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := p.calleeFunc(n)
				if fn == nil || fn.Signature().Recv() != nil {
					return true // methods (e.g. on *rand.Rand) are fine
				}
				switch pkgPathOf(fn) {
				case "time":
					if bannedTimeFuncs[fn.Name()] {
						p.Reportf(n.Pos(), "call to time.%s in deterministic package (simulated time is data; inject times explicitly)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !allowedRandFuncs[fn.Name()] {
						p.Reportf(n.Pos(), "global rand.%s in deterministic package (draw from an injected seeded *rand.Rand)", fn.Name())
					}
				}
			case *ast.RangeStmt:
				p.checkMapRange(file, n)
			}
			return true
		})
	}
}

// checkMapRange flags a range over a map whose body writes state declared
// outside the loop (or returns out of it): the write order — and for an
// early return, the chosen element — then depends on Go's randomized map
// iteration order. Ranges proven order-insensitive carry //lint:ordered.
func (p *Pass) checkMapRange(file *ast.File, rng *ast.RangeStmt) {
	t := p.Pkg.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if p.suppressed(file, rng.Pos(), "ordered") {
		return
	}
	lo, hi := rng.Pos(), rng.End()

	// outer reports whether the expression's root variable is declared
	// outside the range statement (or is too opaque to prove inner).
	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return true
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil {
			obj = p.Pkg.Info.Defs[id]
		}
		if id.Name == "_" {
			return false
		}
		return !declaredWithin(obj, lo, hi)
	}

	// One diagnostic per range, anchored at the range statement (where
	// the fix goes), describing the first order-sensitive effect found.
	reported := false
	report := func(what string) {
		if !reported {
			reported = true
			p.Reportf(rng.Pos(), "map range %s, but map iteration order is randomized (iterate sorted keys, or mark //lint:ordered if provably order-insensitive)", what)
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if outer(lhs) {
					report("writes state declared outside the loop")
					return true
				}
			}
		case *ast.IncDecStmt:
			if outer(n.X) {
				report("writes state declared outside the loop")
			}
		case *ast.SendStmt:
			if outer(n.Chan) {
				report("sends on a channel in iteration order")
			}
		case *ast.ReturnStmt:
			report("returns from inside the loop, so the surviving element depends on iteration order")
		}
		return true
	})
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, comments retained
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// load resolves the package patterns with the go tool, parses the matched
// packages from source and type-checks them against the build cache's
// export data. Only the standard library is used: `go list -export`
// produces compiled export data for every dependency (populating the
// build cache as needed), and go/importer's gc importer reads it back via
// the lookup function — no golang.org/x/tools.
func load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := &cacheImporter{gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})}

	var pkgs []*Package
	for _, t := range targets {
		if t.Standard {
			continue // stdlib can match broad patterns; it is not ours to lint
		}
		pkg, err := parseAndCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// cacheImporter adapts the gc export-data importer, short-circuiting
// "unsafe" (which has no export data).
type cacheImporter struct {
	gc types.Importer
}

func (c *cacheImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return c.gc.Import(path)
}

// parseAndCheck parses one listed package's non-test files and
// type-checks them.
func parseAndCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, comments retained
	Types *types.Package
	Info  *types.Info
	// Target marks packages matched by the command-line patterns; the
	// others are in-module dependencies, loaded so the interprocedural
	// analyzers can see transitive callee bodies but not themselves
	// reported against (their own diagnostics surface when they are
	// linted as targets — `make lint` runs ./..., which targets all).
	Target bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// load resolves the package patterns with the go tool, parses the matched
// packages (plus every in-module dependency — the interprocedural layer
// needs their function bodies) from source and type-checks them against
// the build cache's export data. Only the standard library is used:
// `go list -export` produces compiled export data for every dependency
// (populating the build cache as needed), and go/importer's gc importer
// reads it back via the lookup function — no golang.org/x/tools.
//
// Packages type-check in parallel: each unit resolves its imports from
// export data, never from another unit's in-progress check, so the only
// shared state is the importer's cache (mutex-guarded) and the FileSet
// (internally synchronized). The returned slice is in `go list` order
// regardless of which goroutine finished first.
func load(patterns []string) (mod *Module, err error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}

	exports := map[string]string{} // import path -> export data file
	modulePath := ""
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard {
			continue // stdlib can match broad patterns; it is not ours to lint
		}
		if lp.Module != nil && modulePath == "" {
			modulePath = lp.Module.Path
		}
		if inModule(lp.ImportPath, lp.Module) {
			p := lp
			listed = append(listed, &p)
		}
	}

	fset := token.NewFileSet()
	imp := &cacheImporter{gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})}

	pkgs := make([]*Package, len(listed))
	errs := make([]error, len(listed))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, t := range listed {
		wg.Add(1)
		go func(i int, t *listedPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs[i], errs[i] = parseAndCheck(fset, imp, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return buildModule(modulePath, pkgs), nil
}

// inModule reports whether a listed package belongs to the main module
// (lint targets and the dependencies whose bodies the interprocedural
// analyzers traverse). Vendored or required third-party modules — this
// repository has none — would be skipped like the stdlib.
func inModule(importPath string, m *struct{ Path string }) bool {
	if m == nil {
		return false
	}
	return importPath == m.Path || strings.HasPrefix(importPath, m.Path+"/")
}

// cacheImporter adapts the gc export-data importer, short-circuiting
// "unsafe" (which has no export data) and serializing Import calls — the
// underlying importer caches into an unguarded map, and load type-checks
// packages concurrently.
type cacheImporter struct {
	mu sync.Mutex
	gc types.Importer
}

func (c *cacheImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gc.Import(path)
}

// parseAndCheck parses one listed package's non-test files and
// type-checks them.
func parseAndCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:   lp.ImportPath,
		Dir:    lp.Dir,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		Target: !lp.DepOnly,
	}, nil
}

package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder builds a static lock graph over the module and enforces the
// serving layer's locking discipline, which no amount of -race testing
// proves (the race detector needs the bad interleaving to happen):
//
//  1. Acquisition order must be globally consistent: if some execution
//     acquires lock B while holding A, no execution may acquire A while
//     holding B (and no lock identity may be re-acquired while held —
//     Go mutexes are not reentrant). Held-sets propagate through
//     statically resolved calls, so a helper that locks a stripe while
//     the caller holds the sweeper's pending lock contributes the
//     pend → stripe edge at the caller's context.
//  2. No potentially blocking operation while holding a lock: channel
//     sends and receives, selects without a default case, and
//     WaitGroup.Wait can park the goroutine with the lock held, turning
//     a slow consumer into a scheduler-wide stall. Nonblocking forms
//     (select with default, close) are fine.
//
// Lock identity is structural: the owning named type plus the field
// path (online.Scheduler.pend.mu, online.stripe.mu), or the declaring
// function for locals. Distinct instances of one identity (the stripes
// of a striped queue) collapse together, which is exactly the
// granularity acquisition-order discipline is defined at.
var lockorder = &Analyzer{
	Name:      "lockorder",
	Doc:       "detect inconsistent lock acquisition order and blocking calls under locks",
	RunModule: runLockorder,
}

// lockEvent is one lock acquisition with the identities held just before.
type lockEvent struct {
	id   string
	pos  token.Pos
	held []string
}

// blockEvent is one potentially blocking operation.
type blockEvent struct {
	what string // "channel send", "channel receive", ...
	pos  token.Pos
	held []string
}

// callEvent is one statically resolved call and the locks held at it.
type callEvent struct {
	key  string
	pos  token.Pos
	held []string
}

// lockSummary is the intraprocedural locking behaviour of one function
// body (or function literal).
type lockSummary struct {
	acquires []lockEvent
	blocks   []blockEvent
	calls    []callEvent
}

type lockAnalysis struct {
	pass      *Pass
	summaries map[string]*lockSummary // funcKey -> summary
	literals  []*lockSummary          // function literals, own roots
	trans     map[string]*lockSummary // memoized transitive summaries
}

func runLockorder(p *Pass) {
	la := &lockAnalysis{
		pass:      p,
		summaries: map[string]*lockSummary{},
		trans:     map[string]*lockSummary{},
	}
	for _, pkg := range p.Mod.Pkgs {
		for _, fi := range p.Mod.funcs {
			if fi.pkg != pkg {
				continue
			}
			la.summaries[fi.key] = la.summarize(pkg, fi.decl.Name.Name, fi.decl.Body)
		}
		// Function literals are separate execution roots (goroutines,
		// callbacks): their bodies are skipped by the enclosing
		// function's walk and analyzed here with an empty held-set.
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					la.literals = append(la.literals, la.summarize(pkg, "func literal", lit.Body))
				}
				return true
			})
		}
	}
	la.report()
}

// summarize walks one body in source order, tracking the held lock set.
// Branch bodies run on a copy of the held-set: effects inside them are
// recorded with the branch-local state, and the fall-through path keeps
// the state from before the branch (an early-return unlock inside an if
// must not make the rest of the function look unlocked).
func (la *lockAnalysis) summarize(pkg *Package, name string, body *ast.BlockStmt) *lockSummary {
	w := &lockWalker{la: la, pkg: pkg, fn: name, sum: &lockSummary{}}
	w.block(body, &w.held)
	return w.sum
}

type lockWalker struct {
	la   *lockAnalysis
	pkg  *Package
	fn   string
	sum  *lockSummary
	held []string
}

func (w *lockWalker) block(b *ast.BlockStmt, held *[]string) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		w.stmt(st, held)
	}
}

// branch runs a statement list on a copy of the held-set.
func (w *lockWalker) branch(b *ast.BlockStmt, held *[]string) {
	clone := append([]string(nil), *held...)
	w.block(b, &clone)
}

func (w *lockWalker) stmt(s ast.Stmt, held *[]string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		w.branch(s.Body, held)
		if s.Else != nil {
			clone := append([]string(nil), *held...)
			w.stmt(s.Else, &clone)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held)
		w.branch(s.Body, held)
	case *ast.RangeStmt:
		if t := w.pkg.Info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.record(&w.sum.blocks, s.Pos(), "channel-range receive", held)
			}
		}
		w.exprs(s.X, held)
		w.branch(s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(s.Tag, held)
		for _, c := range s.Body.List {
			w.branch(&ast.BlockStmt{List: c.(*ast.CaseClause).Body}, held)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.branch(&ast.BlockStmt{List: c.(*ast.CaseClause).Body}, held)
		}
	case *ast.SelectStmt:
		blocking := true
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				blocking = false // default case: the select cannot park
			}
		}
		if blocking {
			w.record(&w.sum.blocks, s.Pos(), "select without default", held)
		}
		for _, c := range s.Body.List {
			w.branch(&ast.BlockStmt{List: c.(*ast.CommClause).Body}, held)
		}
	case *ast.SendStmt:
		w.record(&w.sum.blocks, s.Pos(), "channel send", held)
		w.exprs(s.Value, held)
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently, not under our locks;
		// spawning itself never blocks. Its body (a literal) is
		// analyzed as a separate root.
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the
		// walk, which is exactly right. Other deferred calls run at
		// return; approximate their held-set with the current one.
		w.call(s.Call, held, false)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	default:
		w.exprs(s, held)
	}
}

// exprs scans a non-compound statement or expression for calls and
// channel receives, skipping nested function literals and statements
// already handled structurally.
func (w *lockWalker) exprs(n ast.Node, held *[]string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.call(n, held, true)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.record(&w.sum.blocks, n.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

// call classifies one call: mutex acquire/release, blocking wait, or a
// plain call recorded for interprocedural propagation. mutate reports
// whether Lock/Unlock may update the live held-set (false for deferred
// calls, whose unlock must NOT release the lock mid-walk).
func (w *lockWalker) call(call *ast.CallExpr, held *[]string, mutate bool) {
	fn := w.pkg.calleeFunc(call)
	if fn == nil {
		return
	}
	if recv := fn.Signature().Recv(); recv != nil && pkgPathOf(fn) == "sync" {
		sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, _ := rt.(*types.Named)
		typeName := ""
		if named != nil {
			typeName = named.Obj().Name()
		}
		switch typeName {
		case "Mutex", "RWMutex":
			if sel == nil {
				return
			}
			id := w.lockID(sel.X)
			switch fn.Name() {
			case "Lock", "RLock":
				w.record(&w.sum.acquires, call.Pos(), id, held)
				if mutate {
					*held = append(*held, id)
				}
			case "Unlock", "RUnlock":
				if mutate {
					release(held, id)
				}
			}
			return
		case "WaitGroup":
			if fn.Name() == "Wait" {
				w.record(&w.sum.blocks, call.Pos(), "WaitGroup.Wait", held)
			}
			return
		}
		return
	}
	w.sum.calls = append(w.sum.calls, callEvent{key: funcKey(fn), pos: call.Pos(), held: append([]string(nil), *held...)})
}

// record appends an event with a snapshot of the held-set. The generic
// shape keeps acquires (id in the string slot) and blocks (description
// in the string slot) in one code path.
func (w *lockWalker) record(dst any, pos token.Pos, what string, held *[]string) {
	snap := append([]string(nil), *held...)
	switch dst := dst.(type) {
	case *[]lockEvent:
		*dst = append(*dst, lockEvent{id: what, pos: pos, held: snap})
	case *[]blockEvent:
		*dst = append(*dst, blockEvent{what: what, pos: pos, held: snap})
	}
}

// release drops the most recent occurrence of id from the held-set.
func release(held *[]string, id string) {
	h := *held
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == id {
			*held = append(h[:i], h[i+1:]...)
			return
		}
	}
}

// lockID names a mutex structurally: the innermost named type owning the
// field path (online.Scheduler.pend.mu), or the declaring package/
// function for package-level and local mutexes.
func (w *lockWalker) lockID(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pkg.Info.Uses[e]
		if obj != nil && obj.Parent() == w.pkg.Types.Scope() {
			return shortPkg(w.pkg.Path) + "." + e.Name
		}
		return "local " + e.Name + " in " + w.fn
	case *ast.SelectorExpr:
		if t := w.pkg.Info.Types[e.X].Type; t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				owner := named.Obj()
				prefix := owner.Name()
				if owner.Pkg() != nil {
					prefix = shortPkg(owner.Pkg().Path()) + "." + prefix
				}
				return prefix + "." + e.Sel.Name
			}
		}
		return w.lockID(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return w.lockID(e.X) + "[]"
	case *ast.StarExpr:
		return w.lockID(e.X)
	default:
		return "?"
	}
}

// shortPkg trims the module prefix off an import path for readability.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// transitive computes a function's locking effects including everything
// reachable through statically resolved calls: each callee acquire or
// block surfaces with the caller's held-set at the call site merged in.
// Cycles terminate by returning the (possibly partial) in-progress
// summary, which is sound for edge discovery: a cycle adds no lock the
// first traversal has not already seen.
func (la *lockAnalysis) transitive(key string, visiting map[string]bool) *lockSummary {
	if s, ok := la.trans[key]; ok {
		return s
	}
	base := la.summaries[key]
	if base == nil || visiting[key] {
		return &lockSummary{}
	}
	visiting[key] = true
	out := &lockSummary{
		acquires: append([]lockEvent(nil), base.acquires...),
		blocks:   append([]blockEvent(nil), base.blocks...),
	}
	for _, c := range base.calls {
		sub := la.transitive(c.key, visiting)
		for _, a := range sub.acquires {
			out.acquires = append(out.acquires, lockEvent{id: a.id, pos: a.pos, held: union(c.held, a.held)})
		}
		for _, b := range sub.blocks {
			out.blocks = append(out.blocks, blockEvent{what: b.what, pos: b.pos, held: union(c.held, b.held)})
		}
	}
	delete(visiting, key)
	la.trans[key] = out
	return out
}

// union merges two held-sets, preserving order and dropping duplicates.
func union(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, id := range b {
		found := false
		for _, have := range out {
			if have == id {
				found = true
				break
			}
		}
		if !found {
			out = append(out, id)
		}
	}
	return out
}

// report walks every root (declared functions and literals), collects the
// global acquired-while-holding edge set, and emits the diagnostics.
func (la *lockAnalysis) report() {
	type edge struct{ before, after string }
	firstPos := map[edge]token.Pos{}
	var edges []edge
	reportBlock := map[string]bool{}
	var blockDiags []blockEvent

	collect := func(sum *lockSummary) {
		for _, a := range sum.acquires {
			for _, b := range a.held {
				e := edge{before: b, after: a.id}
				if _, ok := firstPos[e]; !ok {
					firstPos[e] = a.pos
					edges = append(edges, e)
				}
			}
		}
		for _, blk := range sum.blocks {
			if len(blk.held) == 0 {
				continue
			}
			key := fmt.Sprintf("%d:%s", blk.pos, strings.Join(blk.held, ","))
			if !reportBlock[key] {
				reportBlock[key] = true
				blockDiags = append(blockDiags, blk)
			}
		}
	}
	keys := make([]string, 0, len(la.summaries))
	for key := range la.summaries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		collect(la.transitive(key, map[string]bool{}))
	}
	for _, lit := range la.literals {
		// Literals get call propagation too: inline their calls once.
		sum := &lockSummary{acquires: lit.acquires, blocks: lit.blocks}
		for _, c := range lit.calls {
			sub := la.transitive(c.key, map[string]bool{})
			for _, a := range sub.acquires {
				sum.acquires = append(sum.acquires, lockEvent{id: a.id, pos: a.pos, held: union(c.held, a.held)})
			}
			for _, b := range sub.blocks {
				sum.blocks = append(sum.blocks, blockEvent{what: b.what, pos: b.pos, held: union(c.held, b.held)})
			}
		}
		collect(sum)
	}

	reported := map[edge]bool{}
	for _, e := range edges {
		if !la.pass.Mod.targetPos(firstPos[e]) {
			continue
		}
		if e.before == e.after {
			la.pass.Reportf(firstPos[e], "lock %s acquired while already held (Go mutexes are not reentrant: this deadlocks if both acquisitions hit the same instance)", e.after)
			continue
		}
		rev := edge{before: e.after, after: e.before}
		if _, ok := firstPos[rev]; ok && !reported[e] && !reported[rev] {
			reported[e], reported[rev] = true, true
			la.pass.Reportf(firstPos[e], "inconsistent lock order: %s acquired while holding %s here, but %s is acquired while holding %s at %s (potential deadlock; pick one order)",
				e.after, e.before, e.before, e.after, la.pass.Mod.Fset.Position(firstPos[rev]))
		}
	}
	for _, blk := range blockDiags {
		if !la.pass.Mod.targetPos(blk.pos) {
			continue
		}
		la.pass.Reportf(blk.pos, "%s while holding %s (can park the goroutine with the lock held; move the operation outside the critical section or use a nonblocking form)",
			blk.what, strings.Join(blk.held, ", "))
	}
}

// Command lint is the repository's custom static-analysis suite: a
// multichecker-style driver written only against the standard library
// (go/parser, go/ast, go/types + go/importer — no third-party modules)
// that enforces invariants the end-to-end gates can only catch after the
// fact. Since PR 7 the driver is interprocedural: it loads every
// in-module package the targets depend on, stitches a cross-package call
// graph and a package reference graph, and runs two kinds of analyzers —
// per-package (concurrency, floatcmp) and whole-module (determinism,
// hotpath, lockorder, goleak):
//
//   - determinism: wall-clock reads (time.Now/Since), global math/rand
//     state and order-sensitive map iteration are banned in the
//     determinism scope, which is *derived*: packages whose outputs CI
//     byte-diffs (determinismSeeds) taint everything they transitively
//     reference through functions, methods or variables. Escapes:
//     //lint:ordered for provably order-insensitive map ranges,
//     //lint:wallclock for wall-clock reads provably confined to
//     non-diffed side-band output.
//   - hotpath: functions annotated //apt:hotpath and everything they
//     transitively call (up to //apt:coldpath boundaries) must stay
//     allocation-lean: no fmt, string concatenation, closures, defer,
//     interface boxing, string/[]byte copies, or unpreallocated append
//     growth in loops.
//   - lockorder: consistent mutex acquisition order module-wide and no
//     potentially blocking operation (channel send/receive, selects
//     without default, WaitGroup.Wait) while holding a lock, with
//     held-sets propagated through static calls.
//   - goleak: every `go` statement's goroutine must have a statically
//     visible termination path (no unguarded infinite loops, directly or
//     transitively).
//   - concurrency: structs carrying sync.Mutex/WaitGroup/atomic.* state
//     must not be passed or returned by value, and a field accessed via
//     sync/atomic anywhere in a package must not also be read or written
//     plainly.
//   - floatcmp: no ==/!= between two non-constant floating-point operands
//     outside _test.go files (compare with an explicit tolerance instead —
//     the Result.Validate lesson).
//
// Usage:
//
//	go run ./ci/lint ./...
//	go run ./ci/lint -json ./internal/sim ./online
//
// Diagnostics print as file:line:col: analyzer: message, or as a JSON
// array with -json (consumed by the CI artifact upload); the exit status
// is 1 when any diagnostic fired, 2 on a driver or type-checking error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lint [-json] packages...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	mod, err := load(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, runAnalyzer(a, mod)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	if *jsonOut {
		if diags == nil {
			diags = []Diagnostic{} // emit [] rather than null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// analyzers is the full suite, in reporting-name order.
var analyzers = []*Analyzer{concurrency, determinism, floatcmp, goleak, hotpath, lockorder}

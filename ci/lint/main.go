// Command lint is the repository's custom static-analysis suite: a
// multichecker-style driver written only against the standard library
// (go/parser, go/ast, go/types + go/importer — no third-party modules)
// that enforces invariants the end-to-end gates can only catch after the
// fact:
//
//   - determinism: the simulation core must stay seeded and byte-identical
//     across reruns, so wall-clock reads (time.Now/Since), global math/rand
//     state and order-sensitive map iteration are banned in the
//     determinism-scoped packages (see deterministicScope). A map range
//     proven order-insensitive is suppressed with a //lint:ordered comment
//     on, or immediately above, the range statement.
//   - hotpath: functions annotated //apt:hotpath (the engine commit/event
//     path, the online striped-submit path) must stay allocation-lean: no
//     fmt.* calls, no string concatenation, no closure literals, no defer.
//   - concurrency: structs carrying sync.Mutex/WaitGroup/atomic.* state
//     must not be passed or returned by value, and a field accessed via
//     sync/atomic anywhere in a package must not also be read or written
//     plainly.
//   - floatcmp: no ==/!= between two non-constant floating-point operands
//     outside _test.go files (compare with an explicit tolerance instead —
//     the Result.Validate lesson).
//
// Usage:
//
//	go run ./ci/lint ./...
//	go run ./ci/lint ./internal/sim ./online
//
// Diagnostics print as file:line:col: analyzer: message; the exit status
// is 1 when any diagnostic fired, 2 on a driver or type-checking error.
package main

import (
	"fmt"
	"os"
	"sort"
)

// deterministicScope lists the import paths whose outputs must be
// byte-identical across reruns (every simulation artifact is diffed in
// CI). The determinism analyzer runs only on these; the other three
// analyzers run everywhere. Keep this list in sync with the
// "Determinism scope" subsection of docs/ARCHITECTURE.md.
var deterministicScope = map[string]bool{
	"repro/apt":               true,
	"repro/internal/sim":      true,
	"repro/internal/dfg":      true,
	"repro/internal/policy":   true,
	"repro/internal/stats":    true,
	"repro/internal/perturb":  true,
	"repro/internal/workload": true,
	"repro/internal/heaps":    true,
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lint packages...")
		os.Exit(2)
	}
	pkgs, err := load(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a == determinism && !deterministicScope[pkg.Path] {
				continue
			}
			diags = append(diags, runAnalyzer(a, pkg)...)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// analyzers is the full suite, in reporting-name order.
var analyzers = []*Analyzer{concurrency, determinism, floatcmp, hotpath}

package main

// The Makefile's BENCH_FILTER (what bench-record snapshots into
// BENCH_PR<N>.json) and the CI bench-regression job's -bench patterns
// (what the merge-base gate actually measures) must select the same
// benchmark set, or the perf trajectory silently diverges from the gate.
// That sync used to be a comment-only convention; this test enforces it.

import (
	"os"
	"regexp"
	"testing"
)

var (
	makefileFilterRE = regexp.MustCompile(`(?m)^BENCH_FILTER\s*\?=\s*(\S+)\s*$`)
	ciBenchRE        = regexp.MustCompile(`-bench '([^']+)'`)
)

func TestBenchFilterSync(t *testing.T) {
	makefile, err := os.ReadFile("../../Makefile")
	if err != nil {
		t.Fatal(err)
	}
	m := makefileFilterRE.FindSubmatch(makefile)
	if m == nil {
		t.Fatal("Makefile has no BENCH_FILTER ?= line")
	}
	filter := string(m[1])

	ci, err := os.ReadFile("../../.github/workflows/ci.yml")
	if err != nil {
		t.Fatal(err)
	}
	// Quoted -bench patterns are the regression job's (head run and
	// merge-base run); the unquoted smoke `-bench .` is intentionally out
	// of scope.
	patterns := ciBenchRE.FindAllSubmatch(ci, -1)
	if len(patterns) < 2 {
		t.Fatalf("found %d quoted -bench patterns in ci.yml, want the bench-regression job's 2", len(patterns))
	}
	for _, p := range patterns {
		if got := string(p[1]); got != filter {
			t.Errorf("ci.yml -bench pattern out of sync with Makefile BENCH_FILTER:\n  ci.yml:   %s\n  Makefile: %s", got, filter)
		}
	}
}

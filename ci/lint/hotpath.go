package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpath enforces allocation discipline inside functions annotated with
// a //apt:hotpath doc comment: the engine commit/event loop and the
// online striped-submit path are benchmarked at a fixed allocs/op budget
// (4 allocs warm), and the cheapest regression to ship is an innocent
// fmt call, a string +, a closure that captures, or a defer on a
// microsecond-scale function. Cold error/panic formatting belongs in a
// separate unannotated helper.
var hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid fmt calls, string concatenation, closures and defer in //apt:hotpath functions",
	Run:  runHotpath,
}

const hotpathDirective = "//apt:hotpath"

func runHotpath(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			p.checkHotpathBody(fd)
		}
	}
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func (p *Pass) checkHotpathBody(fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in hotpath function %s (may allocate its captures; hoist it or use a method value on preallocated state)", name)
			return false // its body is part of the already-reported closure
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer in hotpath function %s (adds per-call overhead; unwind explicitly on each return path)", name)
		case *ast.CallExpr:
			if fn := p.calleeFunc(n); pkgPathOf(fn) == "fmt" {
				p.Reportf(n.Pos(), "call to fmt.%s in hotpath function %s (formats and allocates; move formatting to a cold helper)", fn.Name(), name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && p.isStringExpr(n) {
				p.Reportf(n.Pos(), "string concatenation in hotpath function %s (allocates; precompute or use indexed lookup)", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && p.isStringExpr(n.Lhs[0]) {
				p.Reportf(n.Pos(), "string concatenation in hotpath function %s (allocates; precompute or use indexed lookup)", name)
			}
		}
		return true
	})
}

func (p *Pass) isStringExpr(e ast.Expr) bool {
	t := p.Pkg.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

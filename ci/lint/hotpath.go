package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpath enforces allocation discipline over the closure of functions
// annotated //apt:hotpath: the engine commit/event loop and the online
// striped-submit path are benchmarked at a fixed allocs/op budget
// (4 allocs warm), and the cheapest regression to ship is an innocent
// fmt call, a string +, a closure that captures, a defer, or a helper
// three calls down that boxes a value into an interface. The rules are
// therefore enforced not just in the annotated body but over every
// statically resolvable in-module callee, transitively. Deliberate
// slow-path helpers — panic formatting, degraded-mode timing — are
// annotated //apt:coldpath, which stops the traversal and makes the
// hot/cold boundary explicit and reviewable.
//
// Beyond the four PR 6 rules (fmt, string concatenation, closures,
// defer), three heap-escape heuristics apply to every function in the
// closure:
//
//   - interface boxing: passing a concrete value where an interface
//     parameter is expected (or converting to an interface type)
//     allocates unless the compiler can prove otherwise;
//   - unpreallocated append growth: appending inside a loop to a slice
//     declared empty in the same function reallocates as it grows —
//     preallocate with make(len/cap) or reuse a buffer that survives
//     calls (appends to fields and passed-in buffers are the reuse
//     idiom and stay legal);
//   - string/[]byte conversions: each direction copies.
var hotpath = &Analyzer{
	Name:      "hotpath",
	Doc:       "enforce allocation discipline over the transitive closure of //apt:hotpath functions",
	RunModule: runHotpath,
}

func runHotpath(p *Pass) {
	// Breadth-first over the call graph from every annotated root, so
	// the recorded chain to each function is a shortest one. A function
	// reachable from several roots is checked (and reported) once.
	type item struct {
		fi    *funcInfo
		chain string
	}
	var queue []item
	visited := map[string]bool{}
	for _, pkg := range p.Mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd, "//apt:hotpath") {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := p.Mod.funcOf(funcKey(obj))
				if fi == nil || visited[fi.key] {
					continue
				}
				visited[fi.key] = true
				queue = append(queue, item{fi: fi, chain: fd.Name.Name})
			}
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.fi.pkg.Target {
			p.checkHotpathBody(it.fi, it.chain)
		}
		for _, call := range it.fi.calls {
			callee := p.Mod.funcOf(call.key)
			if callee == nil || callee.cold || visited[callee.key] {
				continue // external, interface-dispatched, cold, or seen
			}
			visited[callee.key] = true
			queue = append(queue, item{fi: callee, chain: it.chain + " → " + callee.decl.Name.Name})
		}
	}
}

// checkHotpathBody applies the allocation rules to one function of the
// hotpath closure. chain names the path from the annotated root (just
// the function name when it is itself a root).
func (p *Pass) checkHotpathBody(fi *funcInfo, chain string) {
	pkg, fd := fi.pkg, fi.decl
	where := "hotpath function " + fd.Name.Name
	if chain != fd.Name.Name {
		where = "function " + fd.Name.Name + " (hotpath-reachable via " + chain + ")"
	}
	fresh := freshSlices(pkg, fd.Body)
	var stack []ast.Node
	loops := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops--
			}
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops++
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in %s (may allocate its captures; hoist it or use a method value on preallocated state)", where)
			// Skip the body, but keep the stack balanced: Inspect will
			// not descend, so pop the literal ourselves.
			stack = stack[:len(stack)-1]
			return false
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer in %s (adds per-call overhead; unwind explicitly on each return path)", where)
		case *ast.CallExpr:
			p.checkHotpathCall(pkg, n, where, loops > 0, fresh)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n) {
				p.Reportf(n.Pos(), "string concatenation in %s (allocates; precompute or use indexed lookup)", where)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				p.Reportf(n.Pos(), "string concatenation in %s (allocates; precompute or use indexed lookup)", where)
			}
		}
		return true
	})
}

// checkHotpathCall applies the call-shaped rules: fmt, string/[]byte
// conversions, interface boxing of arguments, and in-loop append growth.
func (p *Pass) checkHotpathCall(pkg *Package, call *ast.CallExpr, where string, inLoop bool, fresh map[types.Object]bool) {
	if fn := pkg.calleeFunc(call); pkgPathOf(fn) == "fmt" {
		p.Reportf(call.Pos(), "call to fmt.%s in %s (formats and allocates; move formatting to a cold helper)", fn.Name(), where)
		return
	}
	// Conversions: T(x). Flag the string/[]byte copies and concrete-to-
	// interface boxing.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src := pkg.Info.Types[call.Args[0]].Type
		dst := tv.Type
		if src != nil {
			switch {
			case isString(dst) && isByteSlice(src):
				p.Reportf(call.Pos(), "[]byte→string conversion in %s (copies; keep one representation or use a reused buffer)", where)
			case isByteSlice(dst) && isString(src):
				p.Reportf(call.Pos(), "string→[]byte conversion in %s (copies; keep one representation or use a reused buffer)", where)
			case isInterface(dst) && !isInterface(src) && !isNil(src):
				p.Reportf(call.Pos(), "conversion to interface in %s (boxes the value on the heap)", where)
			}
		}
		return
	}
	// Builtin append: growth inside a loop of a slice declared empty in
	// this very function means amortized reallocation per call.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && inLoop && len(call.Args) > 0 {
			if root := rootIdent(call.Args[0]); root != nil && fresh[pkg.Info.Uses[root]] {
				p.Reportf(call.Pos(), "append to %s inside a loop in %s, but %s is declared without capacity (preallocate with make(..., 0, n) or reuse a buffer across calls)", root.Name, where, root.Name)
			}
		}
		return
	}
	// Interface boxing of arguments: a concrete value passed where the
	// callee takes an interface is materialized on the heap unless
	// escape analysis saves it — on a ~1µs path, assume it does not.
	sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at := pkg.Info.Types[arg].Type
		if at == nil || !isInterface(pt) || isInterface(at) || isNil(at) {
			continue
		}
		p.Reportf(arg.Pos(), "argument boxes %s into interface %s in %s (allocates; take a concrete type or a pointer on this path)", at, pt, where)
	}
}

// freshSlices collects the objects of slices declared empty (no capacity)
// inside the body: `var s []T`, `s := []T{}`, `s := make([]T)` or
// `make([]T, 0)` with no capacity argument.
func freshSlices(pkg *Package, body ast.Node) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	note := func(id *ast.Ident) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			if len(n.Rhs) != len(n.Lhs) {
				return true // multi-value RHS: not a literal/make form
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && emptySliceExpr(pkg, n.Rhs[i]) {
					note(id)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					note(id)
				}
			}
		}
		return true
	})
	return fresh
}

// emptySliceExpr reports whether e builds a zero-capacity slice: an empty
// composite literal or a make call without a capacity argument.
func emptySliceExpr(pkg *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		return len(e.Args) < 3
	}
	return false
}

func isStringExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.Types[e].Type
	if t == nil {
		return false
	}
	return isString(t)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

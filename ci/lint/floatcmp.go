package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// floatcmp flags == and != between two non-constant floating-point
// operands outside _test.go files. Computed floats that "should" be equal
// rarely are (PR 4's Result.Validate broke exactly this way at 1e7-ms
// makespans, where one ulp exceeds any fixed epsilon): compare with an
// explicit, magnitude-relative tolerance instead. Comparisons against a
// constant are allowed — assignment round-trips are exact in IEEE 754, so
// sentinel checks like `if opts.Alpha == 0` are deliberate and precise.
var floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= between non-constant float operands outside tests",
	Run:  runFloatcmp,
}

func runFloatcmp(p *Pass) {
	for _, file := range p.Pkg.Files {
		if strings.HasSuffix(p.Pkg.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Pkg.Info.Types[be.X], p.Pkg.Info.Types[be.Y]
			if tx.Type == nil || ty.Type == nil {
				return true
			}
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil || ty.Value != nil {
				return true // constant sentinel comparison: exact by IEEE 754 assignment
			}
			p.Reportf(be.OpPos, "floating-point %s between computed values (one ulp of rounding breaks it; compare with an explicit tolerance, e.g. |a-b| <= eps*(1+|a|))", be.Op)
			return true
		})
	}
}

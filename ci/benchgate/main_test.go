package main

import (
	"strings"
	"testing"
)

const baseOut = `
goos: linux
BenchmarkRunAPT-8    	    1000	     52200 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkRunAPT-8    	    1000	     52800 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
BenchmarkGone-8      	    1000	      1000 ns/op	       0 B/op	       0 allocs/op
PASS
`

// textGate is the default same-machine configuration the pre-record gate
// ran with: ns gated at +15%, bytes at +20%.
var textGate = gateOpts{nsThreshold: 1.15, bytesThreshold: 1.20, gateNs: true}

func parsed(t *testing.T, s string) map[string]*metrics {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchAveragesCounts(t *testing.T) {
	m := parsed(t, baseOut)
	apt := m["BenchmarkRunAPT"] // GOMAXPROCS suffix is normalised away
	if apt == nil {
		t.Fatal("BenchmarkRunAPT not parsed")
	}
	if got := apt.nsMean(); got != 52500 {
		t.Errorf("ns mean = %v, want 52500", got)
	}
	if got := apt.byteMean(); got != 48000 {
		t.Errorf("byte mean = %v, want 48000", got)
	}
	if got := apt.allocMean(); got != 1000 {
		t.Errorf("alloc mean = %v, want 1000", got)
	}
	if len(m) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(m))
	}
}

func TestNormName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkRunAPT-8":             "BenchmarkRunAPT",
		"BenchmarkRunAPT":               "BenchmarkRunAPT",
		"BenchmarkOnlineSubmit/procs=4": "BenchmarkOnlineSubmit/procs=4",
		"BenchmarkScale100k-16":         "BenchmarkScale100k",
	} {
		if got := normName(in); got != want {
			t.Errorf("normName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     57000 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   850000 ns/op	   12000 B/op	      40 allocs/op
BenchmarkNew-8       	    1000	      2000 ns/op	     100 B/op	       5 allocs/op
`
	table, regs := compare(parsed(t, baseOut), parsed(t, head), textGate)
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
	for _, want := range []string{"BenchmarkNew", "not gated", "BenchmarkGone", "missing from head"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     65000 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	_, regs := compare(parsed(t, baseOut), parsed(t, head), textGate)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkRunAPT") || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("regressions = %v, want one ns/op regression on BenchmarkRunAPT", regs)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     52000 ns/op	   48000 B/op	    1001 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	_, regs := compare(parsed(t, baseOut), parsed(t, head), textGate)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("regressions = %v, want one allocs/op regression", regs)
	}
}

func TestCompareBytesRegressionFails(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     52000 ns/op	   60000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	_, regs := compare(parsed(t, baseOut), parsed(t, head), textGate)
	if len(regs) != 1 || !strings.Contains(regs[0], "B/op") {
		t.Errorf("regressions = %v, want one B/op regression", regs)
	}
}

// TestRecordBaselineSkipsNs pins the cross-machine contract: against a
// committed JSON record the ns/op gate is off (wall time does not travel),
// while allocs/op and B/op still gate.
func TestRecordBaselineSkipsNs(t *testing.T) {
	rec := `{
  "BenchmarkRunAPT": {"ns_per_op":52500,"b_per_op":48000,"allocs_per_op":1000,"count":3},
  "BenchmarkStreamRunner": {"ns_per_op":900000,"b_per_op":12000,"allocs_per_op":40,"count":3}
}`
	base, err := parseRecord(strings.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	head := `
BenchmarkRunAPT-8    	    1000	    520000 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	recordGate := gateOpts{nsThreshold: 1.15, bytesThreshold: 1.20, gateNs: false}
	if _, regs := compare(base, parsed(t, head), recordGate); len(regs) != 0 {
		t.Errorf("10x slower head failed a cross-machine gate: %v", regs)
	}
	headWorse := `
BenchmarkRunAPT-8    	    1000	     52000 ns/op	   99000 B/op	    1002 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	_, regs := compare(base, parsed(t, headWorse), recordGate)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want B/op and allocs/op", regs)
	}
}

func TestScaleKernels(t *testing.T) {
	for name, want := range map[string]int{
		"BenchmarkScale1k":             1_000,
		"BenchmarkScale10k":            10_000,
		"BenchmarkScale100k":           100_000,
		"BenchmarkScale1M":             1_000_000,
		"BenchmarkScalePartitioned10k": 10_000,
		"BenchmarkRunAPT":              0,
		"BenchmarkSweepPrepared10k":    0, // not a Scale bench
		"BenchmarkScaleMachine":        0, // no size tail
	} {
		if got := scaleKernels(name); got != want {
			t.Errorf("scaleKernels(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestMaxBytesPerKernelGate pins the absolute memory-diet cap: a Scale
// bench over the per-kernel byte budget fails even with no baseline entry.
func TestMaxBytesPerKernelGate(t *testing.T) {
	head := `
BenchmarkScale1M-8   	       1	4000000000 ns/op	600000000 B/op	     500 allocs/op
`
	opts := gateOpts{nsThreshold: 1.15, bytesThreshold: 1.20, maxBPK: 500}
	table, regs := compare(map[string]*metrics{}, parsed(t, head), opts)
	if len(regs) != 1 || !strings.Contains(regs[0], "bytes/kernel") {
		t.Fatalf("regressions = %v, want one bytes/kernel cap failure", regs)
	}
	if !strings.Contains(table, "bytes/kernel") {
		t.Errorf("table missing bytes/kernel line:\n%s", table)
	}
	okHead := `
BenchmarkScale1M-8   	       1	4000000000 ns/op	470000000 B/op	     500 allocs/op
`
	if _, regs := compare(map[string]*metrics{}, parsed(t, okHead), opts); len(regs) != 0 {
		t.Errorf("470 B/kernel failed a 500 cap: %v", regs)
	}
}

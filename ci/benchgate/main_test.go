package main

import (
	"strings"
	"testing"
)

const baseOut = `
goos: linux
BenchmarkRunAPT-8    	    1000	     52200 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkRunAPT-8    	    1000	     52800 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
BenchmarkGone-8      	    1000	      1000 ns/op	       0 B/op	       0 allocs/op
PASS
`

func parsed(t *testing.T, s string) map[string]*metrics {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchAveragesCounts(t *testing.T) {
	m := parsed(t, baseOut)
	apt := m["BenchmarkRunAPT-8"]
	if apt == nil {
		t.Fatal("BenchmarkRunAPT-8 not parsed")
	}
	if got := apt.nsMean(); got != 52500 {
		t.Errorf("ns mean = %v, want 52500", got)
	}
	if got := apt.allocMean(); got != 1000 {
		t.Errorf("alloc mean = %v, want 1000", got)
	}
	if len(m) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(m))
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     57000 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   850000 ns/op	   12000 B/op	      40 allocs/op
BenchmarkNew-8       	    1000	      2000 ns/op	     100 B/op	       5 allocs/op
`
	table, regs := compare(parsed(t, baseOut), parsed(t, head), 1.15)
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
	for _, want := range []string{"BenchmarkNew-8", "not gated", "BenchmarkGone-8", "missing from head"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     65000 ns/op	   48000 B/op	    1000 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	_, regs := compare(parsed(t, baseOut), parsed(t, head), 1.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkRunAPT-8") || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("regressions = %v, want one ns/op regression on BenchmarkRunAPT-8", regs)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	head := `
BenchmarkRunAPT-8    	    1000	     52000 ns/op	   48000 B/op	    1001 allocs/op
BenchmarkStreamRunner-8  	      10	   900000 ns/op	   12000 B/op	      40 allocs/op
`
	_, regs := compare(parsed(t, baseOut), parsed(t, head), 1.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("regressions = %v, want one allocs/op regression", regs)
	}
}

// Command benchgate compares a baseline against the PR head's
// `go test -bench -benchmem` output and fails when the head regresses.
// The baseline is either another bench-output text file (the merge-base,
// run on the same machine) or a committed BENCH_PR<N>.json record written
// by ci/benchrecord (recognised by its .json extension).
//
// Against a same-machine text baseline it gates on:
//
//   - mean ns/op worse than the threshold (default +15%) on any benchmark
//     present in both files,
//   - any increase in mean allocs/op (allocation counts are deterministic,
//     so any growth is a real regression, not noise), and
//   - mean B/op worse than the bytes threshold (default +20%).
//
// Against a committed JSON record the ns/op gate is skipped — wall time
// does not transfer across machines — while the allocs/op and B/op gates
// stay on: both are machine-independent, so a recorded baseline pins the
// memory trajectory across PRs even when every CI runner differs.
//
// Independently of the baseline, -max-bpk caps bytes-per-kernel on the
// Scale benches: a benchmark named …Scale…<N>k or …<N>M simulates N
// thousand/million kernels, and its head B/op divided by that count must
// stay under the cap. This is the absolute memory-diet gate (the design
// point: a million-kernel run in well under a gigabyte).
//
// Usage:
//
//	benchgate [-ns-threshold 1.15] [-bytes-threshold 1.20] [-max-bpk 0] base.{txt,json} head.txt
//
// It prints a per-benchmark comparison table (markdown-friendly, suitable
// for $GITHUB_STEP_SUMMARY) and exits non-zero listing every regression.
// Benchmarks present in only one file are reported but never fail the
// gate: new benchmarks have no baseline and deleted ones no head.
// GOMAXPROCS name suffixes ("-8") are stripped on both sides, so records
// written on one machine shape compare against any other.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics accumulates one benchmark's samples from one file.
type metrics struct {
	nsSum    float64
	nsCount  int
	byteSum  float64
	byteCnt  int
	allocSum float64
	allocCnt int
}

func (m metrics) nsMean() float64 {
	if m.nsCount == 0 {
		return 0
	}
	return m.nsSum / float64(m.nsCount)
}

func (m metrics) byteMean() float64 {
	if m.byteCnt == 0 {
		return 0
	}
	return m.byteSum / float64(m.byteCnt)
}

func (m metrics) allocMean() float64 {
	if m.allocCnt == 0 {
		return 0
	}
	return m.allocSum / float64(m.allocCnt)
}

// procSuffix is the "-8" GOMAXPROCS tail go test appends to benchmark
// names on multi-proc machines (and omits at GOMAXPROCS=1).
var procSuffix = regexp.MustCompile(`-\d+$`)

// normName strips the GOMAXPROCS suffix so outputs from differently-shaped
// machines (and suffix-free JSON records) land on the same key.
func normName(name string) string { return procSuffix.ReplaceAllString(name, "") }

// parseBench reads `go test -bench` output: lines of the form
//
//	BenchmarkName-8   1000   27600 ns/op   120 B/op   4 allocs/op
//
// aggregating repeated -count runs per benchmark name.
func parseBench(r io.Reader) (map[string]*metrics, error) {
	out := map[string]*metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normName(fields[0])
		m := out[name]
		if m == nil {
			m = &metrics{}
			out[name] = m
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %q: bad value %q: %v", name, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsSum += v
				m.nsCount++
			case "B/op":
				m.byteSum += v
				m.byteCnt++
			case "allocs/op":
				m.allocSum += v
				m.allocCnt++
			}
		}
	}
	return out, sc.Err()
}

// record mirrors ci/benchrecord's per-benchmark JSON object.
type record struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Count       int     `json:"count"`
}

// parseRecord reads a BENCH_PR<N>.json committed baseline into the same
// shape as parsed bench output.
func parseRecord(r io.Reader) (map[string]*metrics, error) {
	var recs map[string]record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("benchgate: baseline record: %v", err)
	}
	out := make(map[string]*metrics, len(recs))
	for name, rec := range recs { //lint:ordered — map rebuild; consumers sort by name
		out[normName(name)] = &metrics{
			nsSum: rec.NsPerOp, nsCount: 1,
			byteSum: rec.BytesPerOp, byteCnt: 1,
			allocSum: rec.AllocsPerOp, allocCnt: 1,
		}
	}
	return out, nil
}

func parseFile(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return parseRecord(f)
	}
	return parseBench(f)
}

// gateOpts configures which regressions fail the gate.
type gateOpts struct {
	nsThreshold    float64 // head ns/op may reach base × this
	bytesThreshold float64 // head B/op may reach base × this
	maxBPK         float64 // absolute bytes-per-kernel cap on Scale benches; 0 disables
	gateNs         bool    // off for cross-machine (JSON record) baselines
}

// scaleKernels extracts the kernel count a Scale benchmark simulates from
// its name tail: …Scale…10k → 10 000, …Scale…1M → 1 000 000. Returns 0 for
// non-Scale benchmarks.
var scaleTail = regexp.MustCompile(`(\d+)([kM])$`)

func scaleKernels(name string) int {
	if !strings.Contains(name, "Scale") {
		return 0
	}
	m := scaleTail.FindStringSubmatch(name)
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return 0
	}
	if m[2] == "M" {
		return n * 1_000_000
	}
	return n * 1_000
}

// compare returns the human-readable table and the list of regressions.
func compare(base, head map[string]*metrics, opts gateOpts) (string, []string) {
	var names []string
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-50s %14s %14s %8s %12s %12s %10s %10s\n",
		"benchmark", "base ns/op", "head ns/op", "Δns", "base B/op", "head B/op", "base allocs", "head allocs")
	var regressions []string
	for _, name := range names {
		h := head[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(&sb, "%-50s %14s %14.1f %8s %12s %12.1f %10s %10.1f   (new, not gated)\n",
				name, "-", h.nsMean(), "-", "-", h.byteMean(), "-", h.allocMean())
			continue
		}
		delta := 0.0
		if b.nsMean() > 0 {
			delta = (h.nsMean() - b.nsMean()) / b.nsMean() * 100
		}
		fmt.Fprintf(&sb, "%-50s %14.1f %14.1f %+7.1f%% %12.1f %12.1f %10.1f %10.1f\n",
			name, b.nsMean(), h.nsMean(), delta, b.byteMean(), h.byteMean(), b.allocMean(), h.allocMean())
		if opts.gateNs && b.nsMean() > 0 && h.nsMean() > b.nsMean()*opts.nsThreshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %+.1f%% (%.1f -> %.1f, threshold %+.0f%%)",
				name, delta, b.nsMean(), h.nsMean(), (opts.nsThreshold-1)*100))
		}
		if b.byteMean() > 0 && h.byteMean() > b.byteMean()*opts.bytesThreshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: B/op %.0f -> %.0f (threshold %+.0f%%)",
				name, b.byteMean(), h.byteMean(), (opts.bytesThreshold-1)*100))
		}
		if h.allocMean() > b.allocMean() {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %.1f -> %.1f (any increase fails)",
				name, b.allocMean(), h.allocMean()))
		}
	}
	// The absolute memory-diet cap applies to every head Scale bench,
	// baseline or not: a brand-new Scale size must arrive under the cap.
	for _, name := range names {
		kernels := scaleKernels(name)
		if kernels == 0 || head[name].byteCnt == 0 {
			continue
		}
		bpk := head[name].byteMean() / float64(kernels)
		fmt.Fprintf(&sb, "%-50s %38.1f bytes/kernel (%d kernels)\n", name, bpk, kernels)
		if opts.maxBPK > 0 && bpk > opts.maxBPK {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f bytes/kernel exceeds the %.0f cap", name, bpk, opts.maxBPK))
		}
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Fprintf(&sb, "%-50s   (missing from head, not gated)\n", name)
		}
	}
	return sb.String(), regressions
}

func main() {
	nsThreshold := flag.Float64("ns-threshold", 1.15, "fail when head mean ns/op exceeds base × this (same-machine text baselines only)")
	bytesThreshold := flag.Float64("bytes-threshold", 1.20, "fail when head mean B/op exceeds base × this")
	maxBPK := flag.Float64("max-bpk", 0, "fail when a Scale bench's head B/op per simulated kernel exceeds this (0 = off)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-ns-threshold 1.15] [-bytes-threshold 1.20] [-max-bpk 0] base.{txt,json} head.txt")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks found in head file")
		os.Exit(2)
	}
	opts := gateOpts{
		nsThreshold:    *nsThreshold,
		bytesThreshold: *bytesThreshold,
		maxBPK:         *maxBPK,
		gateNs:         !strings.HasSuffix(flag.Arg(0), ".json"),
	}
	table, regressions := compare(base, head, opts)
	fmt.Print(table)
	if len(regressions) > 0 {
		fmt.Printf("\nFAIL: %d benchmark regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Println("  -", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nOK: no benchmark regressions.")
}

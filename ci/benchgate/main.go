// Command benchgate compares two `go test -bench -benchmem` outputs (the
// merge-base's and the PR head's) and fails when the head regresses:
//
//   - mean ns/op worse than the threshold (default +15%) on any benchmark
//     present in both files, or
//   - any increase in mean allocs/op (allocation counts are deterministic,
//     so any growth is a real regression, not noise).
//
// Usage:
//
//	benchgate [-ns-threshold 1.15] base.txt head.txt
//
// It prints a per-benchmark comparison table (markdown-friendly, suitable
// for $GITHUB_STEP_SUMMARY) and exits non-zero listing every regression.
// Benchmarks present in only one file are reported but never fail the
// gate: new benchmarks have no baseline and deleted ones no head.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics accumulates one benchmark's samples from one file.
type metrics struct {
	nsSum    float64
	nsCount  int
	allocSum float64
	allocCnt int
}

func (m metrics) nsMean() float64 {
	if m.nsCount == 0 {
		return 0
	}
	return m.nsSum / float64(m.nsCount)
}

func (m metrics) allocMean() float64 {
	if m.allocCnt == 0 {
		return 0
	}
	return m.allocSum / float64(m.allocCnt)
}

// parseBench reads `go test -bench` output: lines of the form
//
//	BenchmarkName-8   1000   27600 ns/op   120 B/op   4 allocs/op
//
// aggregating repeated -count runs per benchmark name.
func parseBench(r io.Reader) (map[string]*metrics, error) {
	out := map[string]*metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		m := out[name]
		if m == nil {
			m = &metrics{}
			out[name] = m
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %q: bad value %q: %v", name, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsSum += v
				m.nsCount++
			case "allocs/op":
				m.allocSum += v
				m.allocCnt++
			}
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// compare returns the human-readable table and the list of regressions.
func compare(base, head map[string]*metrics, nsThreshold float64) (string, []string) {
	var names []string
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-50s %14s %14s %8s %10s %10s\n",
		"benchmark", "base ns/op", "head ns/op", "Δns", "base allocs", "head allocs")
	var regressions []string
	for _, name := range names {
		h := head[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(&sb, "%-50s %14s %14.1f %8s %10s %10.1f   (new, not gated)\n",
				name, "-", h.nsMean(), "-", "-", h.allocMean())
			continue
		}
		delta := 0.0
		if b.nsMean() > 0 {
			delta = (h.nsMean() - b.nsMean()) / b.nsMean() * 100
		}
		fmt.Fprintf(&sb, "%-50s %14.1f %14.1f %+7.1f%% %10.1f %10.1f\n",
			name, b.nsMean(), h.nsMean(), delta, b.allocMean(), h.allocMean())
		if b.nsMean() > 0 && h.nsMean() > b.nsMean()*nsThreshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %+.1f%% (%.1f -> %.1f, threshold %+.0f%%)",
				name, delta, b.nsMean(), h.nsMean(), (nsThreshold-1)*100))
		}
		if h.allocMean() > b.allocMean() {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %.1f -> %.1f (any increase fails)",
				name, b.allocMean(), h.allocMean()))
		}
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Fprintf(&sb, "%-50s   (missing from head, not gated)\n", name)
		}
	}
	return sb.String(), regressions
}

func main() {
	nsThreshold := flag.Float64("ns-threshold", 1.15, "fail when head mean ns/op exceeds base × this")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-ns-threshold 1.15] base.txt head.txt")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks found in head file")
		os.Exit(2)
	}
	table, regressions := compare(base, head, *nsThreshold)
	fmt.Print(table)
	if len(regressions) > 0 {
		fmt.Printf("\nFAIL: %d benchmark regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Println("  -", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nOK: no benchmark regressions.")
}

// Command benchrecord converts `go test -bench -benchmem` output into a
// JSON performance record, so the repository carries an explicit perf
// trajectory: each PR that touches hot paths refreshes a BENCH_PR<N>.json
// snapshot (ns/op, B/op, allocs/op per benchmark, averaged over -count
// repetitions), and later PRs can gate against a recorded baseline instead
// of only the merge-base build.
//
// Usage:
//
//	go test -run '^$' -bench <filter> -benchmem -count 3 ./... | benchrecord -o BENCH_PR4.json
//	benchrecord -o BENCH_PR4.json bench-output.txt
//
// The record is deterministic given its input: benchmarks sort by name and
// floats round to one decimal, so reruns over the same bench output diff
// cleanly. Compare two records with `ci/benchgate` after converting, or
// feed the raw outputs to benchgate directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample accumulates one benchmark's repetitions.
type sample struct {
	ns, bytes, allocs    float64
	nsN, bytesN, allocsN int
}

// Record is one benchmark's averaged metrics in the JSON output.
type Record struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Count       int     `json:"count"`
}

// parse reads `go test -bench` output lines of the form
//
//	BenchmarkName-8   1000   27600 ns/op   120 B/op   4 allocs/op
//
// aggregating repeated -count runs per benchmark name.
func parse(r io.Reader) (map[string]*sample, error) {
	out := map[string]*sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		s := out[fields[0]]
		if s == nil {
			s = &sample{}
			out[fields[0]] = s
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchrecord: %q: bad value %q: %v", fields[0], fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns += v
				s.nsN++
			case "B/op":
				s.bytes += v
				s.bytesN++
			case "allocs/op":
				s.allocs += v
				s.allocsN++
			}
		}
	}
	return out, sc.Err()
}

// round1 rounds to one decimal so records diff cleanly across reruns.
func round1(v float64) float64 { return math.Round(v*10) / 10 }

func main() {
	out := flag.String("o", "", "output JSON path (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchrecord [-o out.json] [bench-output.txt]")
		os.Exit(2)
	}

	samples, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	doc, n, err := render(samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("benchrecord: wrote %d benchmarks to %s\n", n, *out)
}

// render converts accumulated samples into the sorted, averaged JSON
// record and reports how many benchmarks it carries.
func render(samples map[string]*sample) (string, int, error) {
	if len(samples) == 0 {
		return "", 0, fmt.Errorf("benchrecord: no benchmarks found in input")
	}

	records := map[string]Record{}
	for name, s := range samples { //lint:ordered — per-key transform; output is sorted below
		if s.nsN == 0 {
			continue
		}
		rec := Record{NsPerOp: round1(s.ns / float64(s.nsN)), Count: s.nsN}
		if s.bytesN > 0 {
			rec.BytesPerOp = round1(s.bytes / float64(s.bytesN))
		}
		if s.allocsN > 0 {
			rec.AllocsPerOp = round1(s.allocs / float64(s.allocsN))
		}
		records[name] = rec
	}

	names := make([]string, 0, len(records))
	for name := range records { //lint:ordered — collected then sorted just below
		names = append(names, name)
	}
	sort.Strings(names)

	// Hand-ordered encoding: encoding/json sorts map keys too, but an
	// explicit ordered write keeps the record stable if fields grow.
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, name := range names {
		b, err := json.Marshal(records[name])
		if err != nil {
			return "", 0, err
		}
		fmt.Fprintf(&sb, "  %q: %s", name, b)
		if i < len(names)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String(), len(names), nil
}

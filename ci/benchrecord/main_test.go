package main

import (
	"strings"
	"testing"
)

// benchOutput is canned `go test -bench -benchmem -count 3` output: three
// repetitions of two benchmarks (the multi-sample case bench-record
// actually produces), one single-sample benchmark without -benchmem
// columns, plus the surrounding noise lines the parser must skip.
const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Imaginary CPU @ 3.00GHz
BenchmarkRunWarm-8   	   43000	     27600 ns/op	     120 B/op	       4 allocs/op
BenchmarkRunWarm-8   	   43210	     27800 ns/op	     124 B/op	       4 allocs/op
BenchmarkRunWarm-8   	   42900	     27000 ns/op	     122 B/op	       4 allocs/op
BenchmarkOnlineSubmit/procs=4-8 	 1276381	       941.5 ns/op	     312 B/op	       4 allocs/op
BenchmarkOnlineSubmit/procs=4-8 	 1269000	       938.5 ns/op	     312 B/op	       4 allocs/op
BenchmarkOnlineSubmit/procs=4-8 	 1280122	       946.1 ns/op	     314 B/op	       4 allocs/op
BenchmarkScale100k-8 	       4	 330000000 ns/op
PASS
ok  	repro	42.017s
`

// golden is the exact record render wants for benchOutput: sorted by
// name, metrics averaged over the repetitions and rounded to one decimal.
const golden = `{
  "BenchmarkOnlineSubmit/procs=4-8": {"ns_per_op":942,"b_per_op":312.7,"allocs_per_op":4,"count":3},
  "BenchmarkRunWarm-8": {"ns_per_op":27466.7,"b_per_op":122,"allocs_per_op":4,"count":3},
  "BenchmarkScale100k-8": {"ns_per_op":330000000,"count":1}
}
`

func TestParseAndRenderGolden(t *testing.T) {
	samples, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(samples))
	}
	warm := samples["BenchmarkRunWarm-8"]
	if warm == nil || warm.nsN != 3 {
		t.Fatalf("BenchmarkRunWarm-8: want 3 ns/op samples, got %+v", warm)
	}

	doc, n, err := render(samples)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("render reported %d benchmarks, want 3", n)
	}
	if doc != golden {
		t.Errorf("record mismatch:\n got: %s\nwant: %s", doc, golden)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, _, err := parseRender(benchOutput)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := parseRender(benchOutput)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("two renders of the same input differ")
	}
}

func parseRender(in string) (string, int, error) {
	samples, err := parse(strings.NewReader(in))
	if err != nil {
		return "", 0, err
	}
	return render(samples)
}

func TestParseRejectsBadValue(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkX-8  12  oops ns/op\n"))
	if err == nil {
		t.Error("malformed ns/op value accepted")
	}
}

func TestRenderEmpty(t *testing.T) {
	if _, _, err := render(map[string]*sample{}); err == nil {
		t.Error("empty sample set accepted")
	}
}
